module Buf = E9_bits.Buf

type etype = Exec | Dyn
type prot = { r : bool; w : bool; x : bool }

let prot_rx = { r = true; w = false; x = true }
let prot_rw = { r = true; w = true; x = false }
let prot_r = { r = true; w = false; x = false }

type ptype = Load | Note | Other of int

type segment = {
  ptype : ptype;
  prot : prot;
  vaddr : int;
  offset : int;
  filesz : int;
  memsz : int;
  align : int;
}

type section = {
  name : string;
  sh_type : int;
  sh_flags : int;
  addr : int;
  offset : int;
  size : int;
}

type t = {
  mutable etype : etype;
  mutable entry : int;
  mutable segments : segment list;
  mutable sections : section list;
  data : Buf.t;
}

let mmap_section_name = ".e9patch.mmap"
let trap_section_name = ".e9patch.trap"

(* Offsets 0..header_reserve-1 of [data] are reserved for the ELF header and
   program headers, written at serialization time. Content never moves. *)
let header_reserve = 4096
let ehdr_size = 64
let phent_size = 56
let shent_size = 64
let max_phnum = (header_reserve - ehdr_size) / phent_size

let create ~etype ~entry =
  let data = Buf.create header_reserve in
  ignore (Buf.add_zeros data header_reserve);
  { etype; entry; segments = []; sections = []; data }

(* Pad so that the next offset is congruent to [vaddr] modulo [align]. *)
let pad_congruent data ~vaddr ~align =
  if align > 1 then begin
    let off = Buf.length data in
    let want = vaddr mod align and have = off mod align in
    let pad = (want - have + align) mod align in
    ignore (Buf.add_zeros data pad)
  end

let add_segment t seg ~content =
  pad_congruent t.data ~vaddr:seg.vaddr ~align:seg.align;
  let offset = Buf.add_bytes t.data content in
  let seg = { seg with offset; filesz = Bytes.length content } in
  t.segments <- t.segments @ [ seg ];
  offset

let add_section t ~name ~addr ~sh_type ~sh_flags ~content =
  let offset = Buf.add_bytes t.data content in
  let s = { name; sh_type; sh_flags; addr; offset; size = Bytes.length content } in
  t.sections <- t.sections @ [ s ];
  offset

let find_section t name = List.find_opt (fun s -> s.name = name) t.sections

(* Independent clone: one content blit, no serialize/re-parse round trip.
   Segments and sections are immutable records, so sharing the list spines
   is safe; only the lists themselves and the data buffer are fresh. *)
let copy t =
  { etype = t.etype;
    entry = t.entry;
    segments = t.segments;
    sections = t.sections;
    data = Buf.of_bytes (Buf.contents t.data) }

let section_bytes t s = Buf.sub t.data ~pos:s.offset ~len:s.size

let segment_at t vaddr =
  List.find_opt
    (fun s -> s.ptype = Load && vaddr >= s.vaddr && vaddr < s.vaddr + s.memsz)
    t.segments

let prot_flags p =
  (if p.x then 1 else 0) lor (if p.w then 2 else 0) lor if p.r then 4 else 0

let prot_of_flags f = { x = f land 1 <> 0; w = f land 2 <> 0; r = f land 4 <> 0 }

let ptype_code = function Load -> 1 | Note -> 4 | Other n -> n
let ptype_of_code = function 1 -> Load | 4 -> Note | n -> Other n

(* Size [to_bytes t] would have, without materializing it: content, then
   .shstrtab, padding to 8, then the section header table (null + sections
   + shstrtab). Must mirror the layout arithmetic of [to_bytes] exactly. *)
let serialized_size t =
  let shstrtab_len =
    List.fold_left
      (fun acc s -> acc + String.length s.name + 1)
      (1 + String.length ".shstrtab" + 1)
      t.sections
  in
  let shoff = (Buf.length t.data + shstrtab_len + 7) / 8 * 8 in
  shoff + ((List.length t.sections + 2) * shent_size)

let to_bytes t =
  let phnum = List.length t.segments in
  if phnum > max_phnum then failwith "Elf_file: too many program headers";
  (* Work on a copy so serialization is repeatable. *)
  let img = Buf.of_bytes (Buf.contents t.data) in
  (* Section header string table. *)
  let shstrtab = Buffer.create 64 in
  Buffer.add_char shstrtab '\000';
  let strtab_index name =
    let idx = Buffer.length shstrtab in
    Buffer.add_string shstrtab name;
    Buffer.add_char shstrtab '\000';
    idx
  in
  let sec_names = List.map (fun s -> (s, strtab_index s.name)) t.sections in
  let shstrtab_name_idx = strtab_index ".shstrtab" in
  let shstrtab_off = Buf.add_bytes img (Buffer.to_bytes shstrtab) in
  (* Section header table: null + sections + shstrtab. *)
  Buf.pad_to img ((Buf.length img + 7) / 8 * 8);
  let shoff = Buf.length img in
  let shnum = List.length t.sections + 2 in
  let emit_shdr ~name_idx ~sh_type ~sh_flags ~addr ~offset ~size =
    ignore (Buf.add_u32 img name_idx);
    ignore (Buf.add_u32 img sh_type);
    ignore (Buf.add_u64 img (Int64.of_int sh_flags));
    ignore (Buf.add_u64 img (Int64.of_int addr));
    ignore (Buf.add_u64 img (Int64.of_int offset));
    ignore (Buf.add_u64 img (Int64.of_int size));
    ignore (Buf.add_u32 img 0);
    (* sh_link *)
    ignore (Buf.add_u32 img 0);
    (* sh_info *)
    ignore (Buf.add_u64 img 1L);
    (* sh_addralign *)
    ignore (Buf.add_u64 img 0L)
    (* sh_entsize *)
  in
  emit_shdr ~name_idx:0 ~sh_type:0 ~sh_flags:0 ~addr:0 ~offset:0 ~size:0;
  List.iter
    (fun (s, name_idx) ->
      emit_shdr ~name_idx ~sh_type:s.sh_type ~sh_flags:s.sh_flags ~addr:s.addr
        ~offset:s.offset ~size:s.size)
    sec_names;
  emit_shdr ~name_idx:shstrtab_name_idx ~sh_type:3 ~sh_flags:0 ~addr:0
    ~offset:shstrtab_off
    ~size:(Buffer.length shstrtab);
  (* ELF header. *)
  Buf.set_u32 img 0 0x464c457f;
  (* \x7fELF *)
  Buf.set_u8 img 4 2;
  (* ELFCLASS64 *)
  Buf.set_u8 img 5 1;
  (* little endian *)
  Buf.set_u8 img 6 1;
  (* EV_CURRENT *)
  Buf.set_u16 img 16 (match t.etype with Exec -> 2 | Dyn -> 3);
  Buf.set_u16 img 18 62;
  (* EM_X86_64 *)
  Buf.set_u32 img 20 1;
  Buf.set_u64 img 24 (Int64.of_int t.entry);
  Buf.set_u64 img 32 (Int64.of_int ehdr_size);
  (* e_phoff *)
  Buf.set_u64 img 40 (Int64.of_int shoff);
  Buf.set_u32 img 48 0;
  (* e_flags *)
  Buf.set_u16 img 52 ehdr_size;
  Buf.set_u16 img 54 phent_size;
  Buf.set_u16 img 56 phnum;
  Buf.set_u16 img 58 shent_size;
  Buf.set_u16 img 60 shnum;
  Buf.set_u16 img 62 (shnum - 1);
  (* e_shstrndx *)
  (* Program headers. *)
  List.iteri
    (fun i seg ->
      let base = ehdr_size + (i * phent_size) in
      Buf.set_u32 img base (ptype_code seg.ptype);
      Buf.set_u32 img (base + 4) (prot_flags seg.prot);
      Buf.set_u64 img (base + 8) (Int64.of_int seg.offset);
      Buf.set_u64 img (base + 16) (Int64.of_int seg.vaddr);
      Buf.set_u64 img (base + 24) (Int64.of_int seg.vaddr);
      (* p_paddr *)
      Buf.set_u64 img (base + 32) (Int64.of_int seg.filesz);
      Buf.set_u64 img (base + 40) (Int64.of_int seg.memsz);
      Buf.set_u64 img (base + 48) (Int64.of_int seg.align))
    t.segments;
  Buf.contents img

(* Serialize without a section header table: keep the header + program
   headers + content that [to_bytes] lays out, cut the generated string
   table and section headers off the tail, and zero the header fields
   pointing at them. The result is what a fully stripped toolchain leaves
   behind — parsing it back exercises the program-header fallback. *)
let to_bytes_stripped t =
  let full = to_bytes t in
  let img = Buf.of_bytes (Bytes.sub full 0 (Buf.length t.data)) in
  Buf.set_u64 img 40 0L;
  (* e_shoff *)
  Buf.set_u16 img 58 0;
  (* e_shentsize *)
  Buf.set_u16 img 60 0;
  (* e_shnum *)
  Buf.set_u16 img 62 0;
  (* e_shstrndx *)
  Buf.contents img

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

let of_bytes bytes =
  let img = Buf.of_bytes bytes in
  let len = Buf.length img in
  if len < ehdr_size then malformed "truncated header (%d bytes)" len;
  if Buf.get_u32 img 0 <> 0x464c457f then malformed "bad magic";
  if Buf.get_u8 img 4 <> 2 || Buf.get_u8 img 5 <> 1 then
    malformed "not little-endian ELF64";
  let etype =
    match Buf.get_u16 img 16 with
    | 2 -> Exec
    | 3 -> Dyn
    | n -> malformed "unsupported e_type %d" n
  in
  let entry = Int64.to_int (Buf.get_u64 img 24) in
  let phoff = Int64.to_int (Buf.get_u64 img 32) in
  let shoff = Int64.to_int (Buf.get_u64 img 40) in
  let phentsize = Buf.get_u16 img 54 in
  let phnum = Buf.get_u16 img 56 in
  let shentsize = Buf.get_u16 img 58 in
  let shnum = Buf.get_u16 img 60 in
  let shstrndx = Buf.get_u16 img 62 in
  (* Header-table geometry must be sane before any entry is read: a zero
     or alien entry size would misalign every subsequent field read, and a
     table extending past EOF would turn into Invalid_argument from the
     byte accessors instead of a typed error. *)
  if phnum > 0 && phentsize <> phent_size then
    malformed "zero-sized or alien phdr entries (e_phentsize=%d)" phentsize;
  if shnum > 0 && shentsize <> shent_size then
    malformed "zero-sized or alien shdr entries (e_shentsize=%d)" shentsize;
  if phnum > 0 && (phoff < 0 || phoff + (phnum * phent_size) > len) then
    malformed "truncated program headers (%d entries at 0x%x, file is %d)"
      phnum phoff len;
  if shnum > 0 && (shoff < 0 || shoff + (shnum * shent_size) > len) then
    malformed "truncated section headers (%d entries at 0x%x, file is %d)"
      shnum shoff len;
  let segments =
    List.init phnum (fun i ->
        let base = phoff + (i * phent_size) in
        let seg =
          { ptype = ptype_of_code (Buf.get_u32 img base);
            prot = prot_of_flags (Buf.get_u32 img (base + 4));
            offset = Int64.to_int (Buf.get_u64 img (base + 8));
            vaddr = Int64.to_int (Buf.get_u64 img (base + 16));
            filesz = Int64.to_int (Buf.get_u64 img (base + 32));
            memsz = Int64.to_int (Buf.get_u64 img (base + 40));
            align = Int64.to_int (Buf.get_u64 img (base + 48)) }
        in
        (if seg.ptype = Load then begin
           if seg.filesz < 0 || seg.offset < 0 || seg.offset + seg.filesz > len
           then
             malformed "PT_LOAD %d file range [0x%x, 0x%x) outside the image"
               i seg.offset (seg.offset + seg.filesz);
           if seg.memsz < seg.filesz then
             malformed "PT_LOAD %d has memsz %d < filesz %d" i seg.memsz
               seg.filesz
         end);
        seg)
  in
  (* PT_LOAD images must not overlap in memory: the rewriter's layout
     allocator and the loader both assume each address has one home. *)
  (let loads =
     List.filter (fun s -> s.ptype = Load) segments
     |> List.sort (fun a b -> compare a.vaddr b.vaddr)
   in
   let rec check = function
     | a :: (b :: _ as rest) ->
         if a.vaddr + a.memsz > b.vaddr then
           malformed "overlapping PT_LOAD segments at 0x%x and 0x%x" a.vaddr
             b.vaddr;
         check rest
     | _ -> ()
   in
   check loads);
  let raw_sections =
    List.init shnum (fun i ->
        let base = shoff + (i * shent_size) in
        ( Buf.get_u32 img base,
          { name = "";
            sh_type = Buf.get_u32 img (base + 4);
            sh_flags = Int64.to_int (Buf.get_u64 img (base + 8));
            addr = Int64.to_int (Buf.get_u64 img (base + 16));
            offset = Int64.to_int (Buf.get_u64 img (base + 24));
            size = Int64.to_int (Buf.get_u64 img (base + 32)) } ))
  in
  let strtab =
    match List.nth_opt raw_sections shstrndx with
    | Some (_, s) ->
        if s.size < 0 || s.offset < 0 || s.offset + s.size > len then
          malformed "string table [0x%x, 0x%x) outside the image" s.offset
            (s.offset + s.size);
        Buf.sub img ~pos:s.offset ~len:s.size
    | None ->
        (* [shstrndx = 0] (SHN_UNDEF) legitimately means "no string
           table" — including the fully stripped case where [shnum = 0].
           A nonzero index with no such section is a lie in the header:
           refuse rather than silently dropping every section name. *)
        if shstrndx = 0 then Bytes.empty
        else
          malformed "e_shstrndx %d out of range (%d section headers)"
            shstrndx shnum
  in
  let name_at idx =
    if idx >= Bytes.length strtab then ""
    else
      match Bytes.index_from_opt strtab idx '\000' with
      | Some stop -> Bytes.sub_string strtab idx (stop - idx)
      | None -> malformed "unterminated section name at strtab+%d" idx
  in
  let sections =
    raw_sections
    |> List.map (fun (name_idx, s) -> { s with name = name_at name_idx })
    |> List.filter (fun s -> s.sh_type <> 0 && s.name <> ".shstrtab")
  in
  (* Keep only the content up to the section header table: the string table
     and headers are regenerated on the next [to_bytes]. A fully stripped
     image (shnum = 0, shoff = 0) has no table to cut at — the whole file
     is content and the program headers alone describe it. An image that
     claims zero sections but still points at a table is ambiguous (stale
     offset? hidden data?): refuse with a typed error instead of guessing
     where content ends. *)
  let content_len =
    if shnum = 0 then
      if shoff = 0 then Buf.length img
      else
        malformed "no section headers but e_shoff = 0x%x; ambiguous extent"
          shoff
    else min (Buf.length img) shoff
  in
  let data = Buf.of_bytes (Buf.sub img ~pos:0 ~len:content_len) in
  { etype; entry; segments; sections; data }

exception Io_error of string

(* Atomic: serialize into a temp file beside the destination and rename
   over it only once fully written. A failure mid-write (real short
   write, or one injected via [fault]) leaves nothing at [path] — a
   partially serialized ELF must never be mistaken for output. *)
let write_file ?(fault = fun () -> false) t path =
  let tmp = path ^ ".tmp" in
  let write () =
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let b = to_bytes t in
        if fault () then begin
          output_bytes oc (Bytes.sub b 0 (Bytes.length b / 2));
          raise (Sys_error (path ^ ": injected serialization short-write"))
        end;
        output_bytes oc b);
    Sys.rename tmp path
  in
  try write ()
  with Sys_error m ->
    if Sys.file_exists tmp then Sys.remove tmp;
    raise (Io_error m)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let bytes = Bytes.create len in
      really_input ic bytes 0 len;
      of_bytes bytes)

let pp ppf t =
  Format.fprintf ppf "ELF64 %s entry=0x%x size=%d@."
    (match t.etype with Exec -> "EXEC" | Dyn -> "DYN")
    t.entry (Buf.length t.data);
  List.iter
    (fun s ->
      Format.fprintf ppf "  seg %s %c%c%c vaddr=0x%x off=0x%x filesz=%d memsz=%d@."
        (match s.ptype with Load -> "LOAD" | Note -> "NOTE" | Other n ->
          Printf.sprintf "0x%x" n)
        (if s.prot.r then 'r' else '-')
        (if s.prot.w then 'w' else '-')
        (if s.prot.x then 'x' else '-')
        s.vaddr s.offset s.filesz s.memsz)
    t.segments;
  List.iter
    (fun (s : section) ->
      Format.fprintf ppf "  sec %-20s addr=0x%x off=0x%x size=%d@." s.name
        s.addr s.offset s.size)
    t.sections

(** Binary codecs for the two metadata tables the rewriter embeds in the
    patched binary:

    - the {e mapping table} ([.e9patch.mmap]): the mmap calls the integrated
      loader performs before handing control to the real entry point. With
      physical page grouping these are one-to-many (several virtual ranges
      backed by the same file range);
    - the {e trap table} ([.e9patch.trap]): for B0-patched locations, where
      the SIGTRAP handler must redirect each patched address.

    In the real E9Patch the loader is injected machine code; here the tables
    are interpreted by the emulator's loader — see DESIGN.md §2 for why this
    substitution is behaviour-preserving. *)

type mapping = {
  vaddr : int;  (** destination virtual address (page-aligned) *)
  file_off : int;  (** source file offset *)
  len : int;
  prot : Elf_file.prot;
}

type trap = { patch_addr : int; trampoline_addr : int }

val encode_mappings : mapping list -> bytes

(** Decoders raise {!Elf_file.Malformed} when the payload length is not a
    whole number of records. *)
val decode_mappings : bytes -> mapping list

val encode_traps : trap list -> bytes
val decode_traps : bytes -> trap list

(** ELF64 object model: parse, edit in place, append, and re-emit.

    The model covers what static rewriting needs — the header, program
    headers (segments) and section headers — and deliberately nothing else
    (no symbols, no relocations: E9Patch works on stripped binaries).

    Invariants match the paper's §5.1 discipline: existing bytes are only
    ever patched {e in place}; new data is {e appended} to the end of the
    file, so no existing offset is ever recomputed. *)

type etype = Exec | Dyn

(** Segment permission bits. *)
type prot = { r : bool; w : bool; x : bool }

val prot_rx : prot
val prot_rw : prot
val prot_r : prot

type ptype = Load | Note | Other of int

type segment = {
  ptype : ptype;
  prot : prot;
  vaddr : int;
  offset : int;  (** file offset *)
  filesz : int;
  memsz : int;  (** [memsz > filesz] ⇒ zero-filled tail (.bss) *)
  align : int;
}

type section = {
  name : string;
  sh_type : int;
  sh_flags : int;
  addr : int;
  offset : int;
  size : int;
}

type t = {
  mutable etype : etype;
  mutable entry : int;
  mutable segments : segment list;
  mutable sections : section list;
  data : E9_bits.Buf.t;  (** the full file image *)
}

(** Magic section names used by the rewriter and understood by the
    emulator's loader. *)
val mmap_section_name : string
(** Mapping-table section: a sequence of 32-byte records
    [(vaddr, file_offset, length, prot)] applied by the loader after the
    PT_LOAD segments; implements physical page grouping's one-to-many
    mappings. *)

val trap_section_name : string
(** B0 trap table: 16-byte records [(patch_addr, trampoline_addr)] consulted
    by the SIGTRAP handler model. *)

(** [create ~etype ~entry] is an empty file image (headers are materialized
    by {!to_bytes}). *)
val create : etype:etype -> entry:int -> t

(** [add_segment t seg ~content] appends [content] to the image at the next
    aligned offset, records the segment, and returns the file offset chosen.
    [seg.offset] and [seg.filesz] are overridden accordingly. *)
val add_segment : t -> segment -> content:bytes -> int

(** [add_section t ~name ~addr ~sh_type ~sh_flags ~content] appends content
    and records a section over it; returns its file offset. *)
val add_section :
  t -> name:string -> addr:int -> sh_type:int -> sh_flags:int ->
  content:bytes -> int

(** [find_section t name] is the first section named [name], if any. *)
val find_section : t -> string -> section option

(** [copy t] is an independent clone of [t]: edits to either file image do
    not affect the other. One content blit — much cheaper than the
    [of_bytes (to_bytes t)] round trip (no header re-emission or re-parse,
    and the clone's image does not accumulate the serialized header
    block's string table). *)
val copy : t -> t

(** [serialized_size t] is [Bytes.length (to_bytes t)] without
    materializing the serialization. *)
val serialized_size : t -> int

(** [section_bytes t s] copies a section's content out of the image. *)
val section_bytes : t -> section -> bytes

(** [segment_at t vaddr] is the segment whose memory image contains
    [vaddr], if any. *)
val segment_at : t -> int -> segment option

(** [to_bytes t] serializes: ELF header, program headers, section headers
    (with a generated [.shstrtab]) and all content. The layout places
    headers in a leading header block and never moves content. *)
val to_bytes : t -> bytes

(** [to_bytes_stripped t] serializes like {!to_bytes} but without a
    section header table ([e_shoff]/[e_shnum]/[e_shstrndx] zeroed, the
    generated [.shstrtab] cut off): exactly what a fully stripped
    toolchain leaves — header, program headers, content. Parsing it back
    relies on the stripped-file path of {!of_bytes} (whole image kept as
    content) and downstream program-header fallbacks. *)
val to_bytes_stripped : t -> bytes

(** Raised by {!of_bytes} (and the metadata decoders in {!Tablemeta} /
    {!Loadmap}) on structurally invalid input: truncated or zero-sized
    header tables, overlapping PT_LOAD segments, out-of-image ranges. A
    typed error, so callers can distinguish hostile input from parser
    bugs ([Invalid_argument] escaping the byte accessors). *)
exception Malformed of string

(** [of_bytes b] parses a serialized image. Raises {!Malformed} on
    anything that is not a structurally valid little-endian ELF64 file. *)
val of_bytes : bytes -> t

(** A file write failed part-way; the temp file has been removed and no
    (new) file exists at the destination path. *)
exception Io_error of string

(** [write_file t path] serializes atomically: the image is written to a
    temp file and renamed into place, so [path] either holds the complete
    serialized binary or is untouched — {!Io_error} reports the latter.
    [fault] (fault-injection campaigns) simulates a short write when it
    returns [true]. [read_file] is the file-system convenience inverse. *)
val write_file : ?fault:(unit -> bool) -> t -> string -> unit

val read_file : string -> t

(** [pp ppf t] prints a human-readable summary (like a tiny readelf). *)
val pp : Format.formatter -> t -> unit

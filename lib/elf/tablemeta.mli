(** Ground-truth control-flow metadata for synthetic binaries.

    The workload generator records every jump/call table it emits in a
    [.e9repro.cfg] section. This is the side channel a {e relocating}
    rewriter needs to adjust indirect control flow — the information
    E9Patch pointedly does {e not} require. The E9Patch rewriter never
    reads it; the {!Reloc} baseline does (in ground-truth mode), and its
    heuristic mode ignores it to model real-world CFG recovery. *)

type kind =
  | Abs64  (** entries are absolute 8-byte code addresses *)
  | Off32 of int
      (** entries are 4-byte offsets added to the given base at runtime —
          the position-independent switch-table pattern that pointer-scan
          heuristics miss *)

type table = {
  addr : int;  (** the table's address in .rodata *)
  kind : kind;
  entries : int;
}

val section_name : string
val encode : table list -> bytes

(** [decode b] parses the section payload. Raises {!Elf_file.Malformed}
    on a length that is not a whole number of records, an unknown kind
    tag, or a negative entry count. *)
val decode : bytes -> table list

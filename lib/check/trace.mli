(** Differential execution oracle.

    Runs the original and the rewritten binary under {!E9_emu} and compares
    architectural traces modulo the detour instructions the rewriter
    inserts. Three streams are compared (DESIGN.md §8):

    - the retired-instruction sequence filtered to {e original instruction
      boundaries} (patched sites retire their diversion — jump, short jump
      or int3 — at exactly the original address, so the filtered streams
      align one-to-one);
    - the pre-execution register file, hashed, at every boundary retire;
    - every data store as an [(address, size, value)] triple, except stores
      retired by [call]-class instructions: a displaced call pushes its
      trampoline continuation, not the original return address — the one
      architecturally visible difference the paper's control-flow
      transparency caveat allows.

    plus the final outcome and output stream. The oracle is specified for
    {!E9_core.Trampoline.Empty} templates and for {e trace-transparent}
    instrumentation: templates whose extra state lives in host-side
    channels (hostcall counters, the print log) or in declared
    instrumentation-private segments ([instr_ranges]). Instrumentation
    that clobbers registers at a boundary or writes program-visible
    memory would — correctly — be reported as a divergence. *)

type stats = {
  events : int;  (** total trace events compared (per run) *)
  boundary_retires : int;
  stores : int;
  insns_original : int;  (** raw instructions executed, diagnostics only *)
  insns_rewritten : int;
}

val pp_stats : Format.formatter -> stats -> unit

(** [compare_runs ?config ?disasm_from ?holes ~original rewritten]
    executes both binaries and compares their traces; [Error] describes
    the first divergence. [disasm_from] must match the value the
    rewriting used, so boundary sets agree. [holes] (interior data
    extents, see {!Frontend.disassemble_excluding}) likewise reproduces
    an island-excluding rewrite's boundary set; when non-empty it
    replaces the plain sweep and [disasm_from] is ignored.
    [instr_ranges] declares instrumentation-private [(lo, hi)] address
    ranges (the tool's injected scratch/code segments): retires inside
    them and stores targeting them are dropped — symmetrically in both
    runs — so register save/restore on an instrumentation-private stack
    stays invisible while every program-visible store is still
    compared. *)
val compare_runs :
  ?config:E9_emu.Cpu.config ->
  ?disasm_from:int ->
  ?holes:(int * int) list ->
  ?instr_ranges:(int * int) list ->
  original:Elf_file.t ->
  Elf_file.t ->
  (stats, string) result

(** The robustness campaign: drive every {!E9_workload.Adversary} family
    through the rewriter and score the outcome against its pinned
    expectations — the corpus' regression wall.

    Each family is interpreted (generate, optionally strip, derive island
    exclusion ranges and the hole-aware frontend, choose selector and
    options), rewritten at two domain counts, and scored on:

    - patched% against the family's pinned floor;
    - the per-tactic mix and the typed reject histogram (via an
      {!E9_obs.Obs} aggregator);
    - the {!Static} verifier's verdict;
    - the {!Trace} differential-execution verdict;
    - byte identity of the two domain counts' outputs;
    - family-specific ground truth: endbr64 anchor counts, island byte
      preservation, expected tactic-ladder pressure (nonzero T3/B0).

    Everything is deterministic (fixed profile seeds, jobs-invariant
    rewriting), so the machine-readable matrix is reproducible
    byte-for-byte. *)

type score = {
  family : E9_workload.Adversary.family;
  sites : int;  (** patch sites attempted (selected) *)
  patched : int;  (** sites served by any tactic *)
  patched_pct : float;
  stats : E9_core.Stats.t;  (** per-tactic mix *)
  agg : E9_obs.Obs.Agg.agg;  (** typed reject histogram et al. *)
  static_err : string option;  (** [None] = verifier passed *)
  trace_err : string option;  (** [None] = trace oracle passed *)
  jobs_identical : bool;  (** jobs 1 and 4 outputs byte-identical *)
  anchors_ok : bool;  (** endbr64 anchor ground truth ([true] if n/a) *)
  islands_kept : bool;  (** island bytes untouched ([true] if n/a) *)
  wall_s : float;
}

(** [score_family f] interprets and scores one family. [jobs] is the
    pair of domain counts whose outputs must coincide (default
    [(1, 4)]). *)
val score_family : ?jobs:int * int -> E9_workload.Adversary.family -> score

(** [verdict s] is the family's pass/fail against every pinned
    expectation, with a one-line reason naming the regressed property. *)
val verdict : score -> (unit, string) result

val passed : score -> bool

(** [run ()] scores the whole corpus in canonical order. [progress] is
    called with the 1-based family count after each score. *)
val run : ?progress:(int -> unit) -> unit -> score list

(** [to_json scores] is the machine-readable pass-rate matrix (schema
    [e9repro-robustness/1]). *)
val to_json : score list -> E9_obs.Json.t

val pp_score : Format.formatter -> score -> unit
val pp : Format.formatter -> score list -> unit

module Cpu = E9_emu.Cpu
module Machine = E9_emu.Machine
module Insn = E9_x86.Insn

type stats = {
  events : int;
  boundary_retires : int;
  stores : int;
  insns_original : int;
  insns_rewritten : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d trace events (%d boundary retires, %d stores); %d vs %d raw \
     instructions"
    s.events s.boundary_retires s.stores s.insns_original s.insns_rewritten

(* FNV-style rolling mix over the native-int event fields. *)
let mix h v = ((h * 0x100000001b3) + v) land max_int

(* First [record_cap] events are kept verbatim so a divergence can be
   located; beyond that only the rolling hash discriminates. *)
let record_cap = 1 lsl 17

type run_trace = {
  result : Cpu.result;
  hash : int;
  count : int;
  retires : int;
  store_count : int;
  recorded : (int * int * int * int) array;
}

let kind_retire = 1
let kind_store = 2

(* [start] is the original program's entry: events before the first retire
   at that address belong to the injected loader stub (stub mode), which is
   part of the loading process, not of the program's architectural trace.
   [in_instr] marks instrumentation-private address ranges (tool-injected
   data/code segments): retires inside them and stores targeting them are
   instrumentation bookkeeping, exempt from the architectural comparison.
   The filter applies identically to both runs, and the original program
   neither executes nor writes those ranges, so the comparison stays
   one-to-one for everything program-visible. *)
let traced_run ?config ~bounds ~in_instr ~start elf =
  let h = ref 0 in
  let count = ref 0 in
  let retires = ref 0 in
  let store_count = ref 0 in
  let recorded = ref [] in
  let nrec = ref 0 in
  let emit k a b c =
    h := mix (mix (mix (mix !h k) a) b) c;
    incr count;
    if !nrec < record_cap then begin
      recorded := (k, a, b, c) :: !recorded;
      incr nrec
    end
  in
  (* Stores retired by call-class instructions are dropped: a displaced
     call pushes the trampoline continuation, not the original return
     address. The flag is per-retire, so the drop applies symmetrically in
     both runs. *)
  let dropping = ref false in
  let started = ref false in
  let on_retire ~addr ~insn ~regs =
    if not !started then started := addr = start;
    if !started then begin
      (dropping :=
         match insn with Insn.Call _ | Insn.Call_ind _ -> true | _ -> false);
      if Hashtbl.mem bounds addr && not (in_instr addr) then begin
        let rh = Array.fold_left mix 0 regs in
        emit kind_retire addr rh 0;
        incr retires
      end
    end
  in
  let on_store ~addr ~size ~value =
    if !started && (not !dropping) && not (in_instr addr) then begin
      emit kind_store addr size value;
      incr store_count
    end
  in
  let result = Machine.run ?config ~tracer:{ Cpu.on_retire; on_store } elf in
  { result;
    hash = !h;
    count = !count;
    retires = !retires;
    store_count = !store_count;
    recorded = Array.of_list (List.rev !recorded) }

let outcome_str = function
  | Cpu.Exited n -> Printf.sprintf "exited %d" n
  | Cpu.Fault (a, m) -> Printf.sprintf "fault at 0x%x: %s" a m
  | Cpu.Violation p -> Printf.sprintf "violation at 0x%x" p
  | Cpu.Out_of_fuel -> "out of fuel"

let event_str (k, a, b, c) =
  if k = kind_retire then Printf.sprintf "retire 0x%x (regs %x)" a b
  else Printf.sprintf "store [0x%x]<-%d (%d bytes)" a c b

let first_divergence ta tb =
  let n = min (Array.length ta.recorded) (Array.length tb.recorded) in
  let rec go i =
    if i >= n then
      if Array.length ta.recorded <> Array.length tb.recorded then
        Some
          (i,
            Printf.sprintf "event %d: %s vs end of trace" i
              (event_str
                 (if Array.length ta.recorded > i then ta.recorded.(i)
                  else tb.recorded.(i))))
      else None
    else if ta.recorded.(i) <> tb.recorded.(i) then
      Some
        (i,
          Printf.sprintf "event %d: %s vs %s" i
            (event_str ta.recorded.(i))
            (event_str tb.recorded.(i)))
    else go (i + 1)
  in
  go 0

let compare_runs ?config ?disasm_from ?(holes = []) ?(instr_ranges = [])
    ~original rewritten =
  (* [holes]: interior data extents the rewrite excluded. The boundary set
     is only a filter applied identically to both runs, so phantom entries
     from a desynchronized sweep are harmless (island bytes never retire)
     — but the hole-aware sweep also recovers the real boundaries {e
     after} each island that a desynchronized sweep would miss, keeping
     the comparison dense there. *)
  let _, sites =
    match holes with
    | [] -> Frontend.disassemble ?from:disasm_from original
    | holes -> Frontend.disassemble_excluding ~holes original
  in
  let bounds = Hashtbl.create 4096 in
  List.iter
    (fun (s : Frontend.site) -> Hashtbl.replace bounds s.Frontend.addr ())
    sites;
  let start = original.Elf_file.entry in
  let in_instr addr =
    List.exists (fun (lo, hi) -> addr >= lo && addr < hi) instr_ranges
  in
  let ta = traced_run ?config ~bounds ~in_instr ~start original in
  let tb = traced_run ?config ~bounds ~in_instr ~start rewritten in
  if ta.result.Cpu.outcome <> tb.result.Cpu.outcome then
    Error
      (Printf.sprintf "outcome diverged: %s vs %s"
         (outcome_str ta.result.Cpu.outcome)
         (outcome_str tb.result.Cpu.outcome))
  else if not (String.equal ta.result.Cpu.output tb.result.Cpu.output) then
    Error
      (Printf.sprintf "output diverged (%d vs %d bytes)"
         (String.length ta.result.Cpu.output)
         (String.length tb.result.Cpu.output))
  else if ta.count <> tb.count || ta.hash <> tb.hash then
    Error
      (match first_divergence ta tb with
      | Some (_, msg) -> "trace diverged: " ^ msg
      | None ->
          Printf.sprintf
            "trace diverged beyond the recorded window (%d vs %d events, \
             hash %x vs %x)"
            ta.count tb.count ta.hash tb.hash)
  else
    Ok
      { events = ta.count;
        boundary_retires = ta.retires;
        stores = ta.store_count;
        insns_original = ta.result.Cpu.insns;
        insns_rewritten = tb.result.Cpu.insns }

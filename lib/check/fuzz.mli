(** Randomized differential fuzzing of the rewriter.

    Draws random {!E9_workload.Codegen} profiles crossed with random tactic
    configurations (B1/B2, T1, T2, T3, [t2_joint], B0 fallback, page
    granularity/grouping, loader mode, jump- vs. heap-write selection),
    rewrites each generated binary with {!E9_core.Trampoline.Empty}
    templates, and requires that

    - the {!Static} verifier accounts for every changed byte, and
    - the {!Trace} oracle observes no architectural divergence.

    Exposed both as a QCheck property (with shrinking to a minimal failing
    case) for [dune runtest], and as a seeded campaign runner for the
    [e9patch_cli fuzz] subcommand. *)

type case = {
  profile : E9_workload.Codegen.profile;
  options : E9_core.Rewriter.options;
  select_writes : bool;
      (** patch heap writes (application A2) instead of jumps (A1) *)
}

val case_to_string : case -> string
val gen_case : case QCheck2.Gen.t

(** [prepare case] generates the case's binary, disassembly start and
    site selector — the common front half of {!run_case} and
    {!rewrite}, exposed for harnesses (e.g. {!Inject}) that drive the
    rewrite themselves. Raises {!E9_workload.Codegen.Error} when the
    profile cannot be generated. *)
val prepare :
  case -> Elf_file.t * int option * (Frontend.site -> bool)

(** [run_case case] is one generate → rewrite → verify → differential-run
    round trip. *)
val run_case : case -> (Static.report * Trace.stats, string) result

(** [rewrite ?jobs ?jitter ?shard_span case] is the generate → rewrite
    half alone, returning the input binary, the disassembly start it
    used, and the full rewrite result — the hook for determinism and
    scaling tests that need to compare outputs across [jobs] values,
    steal schedules ([jitter] is passed to {!E9_core.Rewriter.run}) or
    shard spans. *)
val rewrite :
  ?jobs:int ->
  ?jitter:(int -> unit) ->
  ?shard_span:int ->
  case ->
  Elf_file.t * int option * E9_core.Rewriter.result

(** Aggregate numbers from a campaign, for reporting. *)
type summary = {
  cases : int;
  failed : (string * string) list;  (** printed case, failure message *)
  skipped : int;
      (** cases whose profile could not even be generated
          ({!E9_workload.Codegen.Error}) — reported, not failed *)
  changed_bytes : int;
  diversions : int;
  short_jumps : int;
  traps : int;
  trampolines : int;
  boundary_retires : int;
  stores : int;
}

val pp_summary : Format.formatter -> summary -> unit

(** [campaign ?progress ~n ~seed ()] runs [n] random cases from a fixed
    seed; deterministic given [(n, seed)]. *)
val campaign : ?progress:(int -> unit) -> n:int -> seed:int -> unit -> summary

(** The QCheck property (shrinking enabled), for the test suite. *)
val property : ?count:int -> ?name:string -> unit -> QCheck2.Test.t

(** Incremental-rewrite property (DESIGN.md §14): populate a chunk-plan
    store from a base binary, derive an edited revision (a contiguous
    run of instructions NOPped out), and check that the warm
    (plan-replaying) rewrite of the revision is byte-identical — bytes
    and stats — to a cold rewrite, for every domain count in [jobs]
    (default [1; 4]). *)
val incremental_property :
  ?count:int -> ?jobs:int list -> ?name:string -> unit -> QCheck2.Test.t

(** Jobs-determinism property: rewriting with every domain count in
    [jobs] (default [2; 4; 7]) produces output bytes, stats and
    patched-site lists identical to [jobs = 1], under a [shard_span]
    (default 2048) small enough to force multiple shards on fuzz-sized
    binaries; the sharded output must also pass {!Static.verify}. *)
val jobs_property :
  ?count:int ->
  ?jobs:int list ->
  ?shard_span:int ->
  ?name:string ->
  unit ->
  QCheck2.Test.t

(** Steal-schedule determinism property (DESIGN.md §12): for every
    domain count in [jobs] and a randomized jitter schedule (a keyed
    [Shard]-site fault record decides which chunks the claiming worker
    stalls on, skewing completion order and provoking steals), output
    bytes and the absorbed {!E9_core.Layout} occupancy are identical to
    the [jobs = 1] rewrite. *)
val steal_property :
  ?count:int ->
  ?jobs:int list ->
  ?shard_span:int ->
  ?name:string ->
  unit ->
  QCheck2.Test.t

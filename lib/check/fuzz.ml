module Codegen = E9_workload.Codegen
module Rewriter = E9_core.Rewriter
module Tactics = E9_core.Tactics
module Trampoline = E9_core.Trampoline
module Cpu = E9_emu.Cpu

type case = {
  profile : Codegen.profile;
  options : Rewriter.options;
  select_writes : bool;
}

let case_to_string c =
  let p = c.profile in
  let t = c.options.Rewriter.tactics in
  Printf.sprintf
    "{seed=%Ld pie=%b fns=%d blk=%d sjb=%.2f hwb=%.2f bdb=%.2f swb=%.2f \
     insns=%d ptb=%.2f data_kb=%d iters=%d | base=%b t1=%b t2=%b t3=%b \
     b0=%b joint=%b gran=%d group=%b loader=%s select=%s}"
    p.Codegen.seed p.Codegen.pie p.Codegen.functions p.Codegen.blocks_per_fn
    p.Codegen.short_jump_bias p.Codegen.heap_write_bias p.Codegen.big_disp_bias
    p.Codegen.small_write_bias p.Codegen.block_insns p.Codegen.pic_table_bias
    p.Codegen.data_in_text_kb p.Codegen.iterations t.Tactics.enable_base
    t.Tactics.enable_t1 t.Tactics.enable_t2 t.Tactics.enable_t3
    t.Tactics.b0_fallback t.Tactics.t2_joint c.options.Rewriter.granularity
    c.options.Rewriter.grouping
    (match c.options.Rewriter.loader with
    | Rewriter.Table -> "table"
    | Rewriter.Stub -> "stub")
    (if c.select_writes then "writes" else "jumps")

let gen_case =
  let open QCheck2.Gen in
  let* seed = map Int64.of_int (int_bound 0x3fff_ffff) in
  let* pie = bool in
  let* functions = int_range 4 24 in
  let* blocks_per_fn = int_range 2 6 in
  let* short_jump_bias = float_bound_inclusive 0.9 in
  let* heap_write_bias = float_bound_inclusive 0.5 in
  let* big_disp_bias = float_bound_inclusive 1.0 in
  let* small_write_bias = float_bound_inclusive 1.0 in
  let* block_insns = int_range 1 6 in
  let* pic_table_bias = float_bound_inclusive 1.0 in
  let* data_in_text_kb = oneofl [ 0; 0; 0; 1; 2 ] in
  let* iterations = int_range 5 40 in
  let* enable_base = bool in
  let* enable_t1 = bool in
  let* enable_t2 = bool in
  let* enable_t3 = bool in
  let* b0_fallback = bool in
  let* t2_joint = bool in
  let* granularity = oneofl [ 1; 2; 4 ] in
  let* grouping = bool in
  let* stub = frequency [ (4, return false); (1, return true) ] in
  let* select_writes = bool in
  return
    { profile =
        { Codegen.default_profile with
          name = "fuzz";
          seed;
          pie;
          functions;
          blocks_per_fn;
          short_jump_bias;
          heap_write_bias;
          big_disp_bias;
          small_write_bias;
          block_insns;
          pic_table_bias;
          data_in_text_kb;
          iterations };
      options =
        { Rewriter.default_options with
          tactics =
            { Tactics.default_options with
              enable_base;
              enable_t1;
              enable_t2;
              enable_t3;
              b0_fallback;
              t2_joint };
          granularity;
          grouping;
          loader = (if stub then Rewriter.Stub else Rewriter.Table) };
      select_writes }

(* The generated programs finish well under this; a runaway rewrite shows
   up as Out_of_fuel on one side only, i.e. as a divergence. *)
let fuzz_config = { Cpu.default_config with Cpu.fuel = 50_000_000 }

(* Generate the case's binary and selector — shared by the differential
   round trip below and the jobs-determinism property. *)
let prepare case =
  let elf = Codegen.generate case.profile in
  let disasm_from =
    if case.profile.Codegen.data_in_text_kb > 0 then
      Option.map
        (fun (s : Elf_file.section) -> s.Elf_file.addr)
        (Elf_file.find_section elf Codegen.chromemain_marker)
    else None
  in
  let select =
    if case.select_writes then Frontend.select_heap_writes
    else Frontend.select_jumps
  in
  (elf, disasm_from, select)

let rewrite ?jobs ?jitter ?shard_span case =
  let elf, disasm_from, select = prepare case in
  let options =
    match shard_span with
    | None -> case.options
    | Some shard_span -> { case.options with Rewriter.shard_span }
  in
  let r =
    Rewriter.run ~options ?jobs ?jitter ?disasm_from elf ~select
      ~template:(fun _ -> Trampoline.Empty)
  in
  (elf, disasm_from, r)

let run_case case =
  let elf, disasm_from, select = prepare case in
  let r =
    Rewriter.run ~options:case.options ?disasm_from elf ~select
      ~template:(fun _ -> Trampoline.Empty)
  in
  match Static.verify ?disasm_from ~original:elf r.Rewriter.output with
  | Error e -> Error (Format.asprintf "static: %a" Static.pp_error e)
  | Ok report -> (
      match
        Trace.compare_runs ~config:fuzz_config ?disasm_from ~original:elf
          r.Rewriter.output
      with
      | Error msg -> Error ("trace: " ^ msg)
      | Ok stats -> Ok (report, stats))

type summary = {
  cases : int;
  failed : (string * string) list;
  skipped : int;
  changed_bytes : int;
  diversions : int;
  short_jumps : int;
  traps : int;
  trampolines : int;
  boundary_retires : int;
  stores : int;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d cases, %d failed, %d skipped; %d changed bytes, %d diversions, \
     %d short jumps, %d traps, %d trampolines verified; %d boundary \
     retires, %d stores compared"
    s.cases
    (List.length s.failed)
    s.skipped s.changed_bytes s.diversions s.short_jumps s.traps
    s.trampolines s.boundary_retires s.stores

let campaign ?(progress = fun _ -> ()) ~n ~seed () =
  let rand = Random.State.make [| seed |] in
  let s =
    ref
      { cases = 0;
        failed = [];
        skipped = 0;
        changed_bytes = 0;
        diversions = 0;
        short_jumps = 0;
        traps = 0;
        trampolines = 0;
        boundary_retires = 0;
        stores = 0 }
  in
  for i = 1 to n do
    let case = QCheck2.Gen.generate1 ~rand gen_case in
    (match run_case case with
    | exception Codegen.Error _ ->
        (* An ungeneratable profile is the workload's failure, not the
           rewriter's: skip-and-report instead of aborting the campaign. *)
        s := { !s with cases = !s.cases + 1; skipped = !s.skipped + 1 }
    | Ok (r, t) ->
        s :=
          { !s with
            cases = !s.cases + 1;
            changed_bytes = !s.changed_bytes + r.Static.changed_bytes;
            diversions = !s.diversions + r.Static.diversions;
            short_jumps = !s.short_jumps + r.Static.short_jumps;
            traps = !s.traps + r.Static.traps;
            trampolines = !s.trampolines + r.Static.trampolines_checked;
            boundary_retires =
              !s.boundary_retires + t.Trace.boundary_retires;
            stores = !s.stores + t.Trace.stores }
    | Error msg ->
        s :=
          { !s with
            cases = !s.cases + 1;
            failed = (case_to_string case, msg) :: !s.failed });
    progress i
  done;
  { !s with failed = List.rev !s.failed }

let property ?(count = 50) ?(name = "rewrite is byte-accounted and trace-equivalent") () =
  QCheck2.Test.make ~count ~name ~print:case_to_string gen_case (fun case ->
      match run_case case with
      | Ok _ -> true
      | Error msg -> QCheck2.Test.fail_reportf "%s" msg)

let steal_property ?(count = 15) ?(jobs = [ 2; 4; 7 ]) ?(shard_span = 2048)
    ?(name = "rewrite output is identical for every steal schedule") () =
  let gen =
    QCheck2.Gen.pair gen_case
      (QCheck2.Gen.pair (QCheck2.Gen.int_range 1 7) (QCheck2.Gen.int_range 0 7))
  in
  let print (case, (k, off)) =
    Printf.sprintf "%s | jitter shard@%d,shard%%%d" (case_to_string case) off k
  in
  QCheck2.Test.make ~count ~name ~print gen (fun (case, (k, off)) ->
      let _, _, r1 = rewrite ~jobs:1 ~shard_span case in
      let reference = Elf_file.to_bytes r1.Rewriter.output in
      List.for_all
        (fun n ->
          (* A standalone keyed fault record picks which chunks to stall:
             the claiming worker spins before chunk [i] whenever the
             [Shard] site matches [i] (every [k]-th chunk plus chunk
             [off]), skewing completion order and provoking steals —
             without touching any input the chunk tasks compute from. *)
          let sched =
            E9_fault.Fault.create
              [ { E9_fault.Fault.site = E9_fault.Fault.Shard;
                  trigger = E9_fault.Fault.Every k };
                { E9_fault.Fault.site = E9_fault.Fault.Shard;
                  trigger = E9_fault.Fault.At off } ]
          in
          let jitter i =
            if E9_fault.Fault.fires_at sched E9_fault.Fault.Shard ~key:i then
              for _ = 1 to 100_000 do
                ignore (Sys.opaque_identity i)
              done
          in
          let _, _, rn = rewrite ~jobs:n ~jitter ~shard_span case in
          if
            not (Bytes.equal (Elf_file.to_bytes rn.Rewriter.output) reference)
          then
            QCheck2.Test.fail_reportf
              "jobs=%d jitter(%%%d,@%d): output bytes differ from jobs=1 \
               (%d chunks, %d steals)"
              n k off rn.Rewriter.shards rn.Rewriter.steals
          else if rn.Rewriter.occupancy <> r1.Rewriter.occupancy then
            QCheck2.Test.fail_reportf
              "jobs=%d jitter(%%%d,@%d): absorbed layout occupancy differs \
               from jobs=1"
              n k off
          else true)
        jobs)

let incremental_property ?(count = 10) ?(jobs = [ 1; 4 ])
    ?(name = "incremental (plan-replay) rewrite is byte-identical to cold") ()
    =
  let module Plan = E9_core.Plan in
  (* Fuzz-sized texts are a few KiB, so shrink the chunking well below
     the production default to get several chunks per binary. *)
  let chunking = { Chunker.min_size = 256; avg_bits = 9; max_size = 2048 } in
  let gen =
    QCheck2.Gen.pair gen_case
      (QCheck2.Gen.pair (QCheck2.Gen.float_bound_inclusive 1.0)
         (QCheck2.Gen.int_range 0 96))
  in
  let print (case, (frac, budget)) =
    Printf.sprintf "%s | edit@%.2f,%dB" (case_to_string case) frac budget
  in
  QCheck2.Test.make ~count ~name ~print gen
    (fun (case, (edit_frac, edit_budget)) ->
      let elf, disasm_from, select = prepare case in
      let options = { case.options with Rewriter.chunking = Some chunking } in
      let plan_of table =
        { Plan.store = Plan.table_store table;
          spec_key =
            (fun ~lo:_ ~len:_ ->
              if case.select_writes then "fuzz:writes" else "fuzz:jumps") }
      in
      let rewrite ?jobs ~plan elf =
        Rewriter.run ~options ?jobs ~plan ?disasm_from elf ~select
          ~template:(fun _ -> Trampoline.Empty)
      in
      (* Populate the store from the base revision, then derive an edited
         revision: one contiguous run of decoded instructions replaced by
         NOPs (boundary-preserving, so it stays a valid sweep input). A
         zero budget degenerates to the all-hit replay of the same bytes. *)
      let warm_table = Plan.create_table () in
      ignore (rewrite ~plan:(plan_of warm_table) elf);
      let revision =
        let b = Elf_file.to_bytes elf in
        let text, sites = Frontend.disassemble ?from:disasm_from elf in
        let editable =
          Array.of_list (List.filter (fun s -> s.Frontend.len >= 2) sites)
        in
        let n = Array.length editable in
        if n = 0 then b
        else begin
          let b = Bytes.copy b in
          let i = ref (int_of_float (edit_frac *. float_of_int (n - 1))) in
          let churned = ref 0 in
          while !churned < edit_budget && !i < n do
            let s = editable.(!i) in
            let off =
              text.Frontend.offset + (s.Frontend.addr - text.Frontend.base)
            in
            Bytes.fill b off s.Frontend.len '\x90';
            churned := !churned + s.Frontend.len;
            incr i
          done;
          b
        end
      in
      let elf' = Elf_file.of_bytes revision in
      let cold = rewrite ~plan:(plan_of (Plan.create_table ())) elf' in
      let reference = Elf_file.to_bytes cold.Rewriter.output in
      List.for_all
        (fun n ->
          let warm = rewrite ~jobs:n ~plan:(plan_of warm_table) elf' in
          if
            not
              (Bytes.equal (Elf_file.to_bytes warm.Rewriter.output) reference)
          then
            QCheck2.Test.fail_reportf
              "jobs=%d warm output differs from cold (%d hits, %d misses, \
               %d conflicts)"
              n warm.Rewriter.plan_hits warm.Rewriter.plan_misses
              warm.Rewriter.plan_conflicts
          else if warm.Rewriter.stats <> cold.Rewriter.stats then
            QCheck2.Test.fail_reportf "jobs=%d warm stats differ from cold" n
          else true)
        jobs)

let jobs_property ?(count = 25) ?(jobs = [ 2; 4; 7 ]) ?(shard_span = 2048)
    ?(name = "rewrite output is identical for every domain count") () =
  QCheck2.Test.make ~count ~name ~print:case_to_string gen_case (fun case ->
      let elf, disasm_from, r1 = rewrite ~jobs:1 ~shard_span case in
      (* The small span forces multiple shards even on fuzz-sized
         binaries, so jobs=1 exercises the sharded algorithm too; check
         it against the independent verifier, not just against itself. *)
      (match Static.verify ?disasm_from ~original:elf r1.Rewriter.output with
      | Ok _ -> ()
      | Error e ->
          QCheck2.Test.fail_reportf "sharded rewrite (%d shards): %a"
            r1.Rewriter.shards Static.pp_error e);
      let reference = Elf_file.to_bytes r1.Rewriter.output in
      List.for_all
        (fun n ->
          let _, _, rn = rewrite ~jobs:n ~shard_span case in
          if not (Bytes.equal (Elf_file.to_bytes rn.Rewriter.output) reference)
          then
            QCheck2.Test.fail_reportf
              "jobs=%d output bytes differ from jobs=1 (%d shards)" n
              rn.Rewriter.shards
          else if rn.Rewriter.stats <> r1.Rewriter.stats then
            QCheck2.Test.fail_reportf "jobs=%d stats differ from jobs=1" n
          else if rn.Rewriter.patched_sites <> r1.Rewriter.patched_sites then
            QCheck2.Test.fail_reportf
              "jobs=%d patched sites differ from jobs=1" n
          else true)
        jobs)

module Codegen = E9_workload.Codegen
module Rewriter = E9_core.Rewriter
module Tactics = E9_core.Tactics
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline
module Obs = E9_obs.Obs
module Json = E9_obs.Json
module Fault = E9_fault.Fault

(* One campaign case: a random rewrite profile × a random fault
   schedule. The property is the DESIGN.md §11 contract — every injected
   fault lands in exactly one of three outcomes. *)
type fcase = { case : Fuzz.case; schedule : Fault.rule list }

let fcase_to_string f =
  Printf.sprintf "%s inject=%S" (Fuzz.case_to_string f.case)
    (Fault.to_string f.schedule)

(* Fault schedules: 1-3 rules over the counted/indexed sites. Occurrence
   thresholds are skewed low (the first queries are the ones every case
   reaches); decode cuts range over text offsets. [Trace] and [Write]
   rules are exercised by the file-write/trace legs below, not by the
   rewrite itself. *)
let gen_rule =
  let open QCheck2.Gen in
  let* site =
    oneofl
      [ Fault.Alloc; Fault.Alloc; Fault.Alloc; Fault.B0_alloc; Fault.Decode;
        Fault.Shard; Fault.Trace; Fault.Write ]
  in
  let* trigger =
    match site with
    | Fault.Decode ->
        let* off = int_bound 20_000 in
        return (Fault.At off)
    | Fault.Shard ->
        (* Shard keys are small indices; [From 0] would kill shard 0 of
           every sharded rewrite, which is fine too. *)
        oneof
          [ map (fun k -> Fault.At k) (int_bound 8);
            map (fun k -> Fault.From k) (int_bound 4);
            map (fun k -> Fault.Every (k + 1)) (int_bound 3) ]
    | _ ->
        oneof
          [ map (fun n -> Fault.At n) (int_bound 200);
            map (fun n -> Fault.From n) (int_bound 50);
            map (fun n -> Fault.Every (n + 1)) (int_bound 63) ]
  in
  return { Fault.site; trigger }

let gen_schedule =
  let open QCheck2.Gen in
  let* n = int_range 1 3 in
  list_size (return n) gen_rule

let gen_fcase =
  let open QCheck2.Gen in
  let* case = Fuzz.gen_case in
  let* schedule = gen_schedule in
  return { case; schedule }

(* Force sharding on fuzz-sized binaries so shard faults and the
   fork/merge fault accounting are actually exercised. *)
let shard_span = 2048

type outcome =
  | Full  (** rewrite + static verification OK, no site failed *)
  | Degraded  (** verified, but sites failed or fell back to B0 *)
  | Typed of string  (** typed refusal, nothing half-written *)

let outcome_name = function
  | Full -> "full"
  | Degraded -> "degraded"
  | Typed _ -> "typed"

let same_outcome a b =
  match (a, b) with
  | Full, Full | Degraded, Degraded -> true
  | Typed x, Typed y -> x = y
  | _ -> false

(* Rewrite under an injected schedule and classify. [Error _] means the
   contract was violated: an uncaught exception or an output the
   independent verifier rejects — the campaign counts those as failures
   of the pipeline, not as fault outcomes. *)
let run_leg ?(jobs = 1) f =
  let elf, disasm_from, select = Fuzz.prepare f.case in
  let options = { f.case.Fuzz.options with Rewriter.shard_span } in
  let fault = Fault.create f.schedule in
  match
    Rewriter.run ~options ~fault ~jobs ?disasm_from elf ~select
      ~template:(fun _ -> Trampoline.Empty)
  with
  | exception Rewriter.Error m -> Ok (Typed ("rewriter: " ^ m), None)
  | exception Frontend.Error m -> Ok (Typed ("frontend: " ^ m), None)
  | r -> (
      match Static.verify ?disasm_from ~original:elf r.Rewriter.output with
      | Error e ->
          Error
            (Format.asprintf "output rejected by Static.verify: %a"
               Static.pp_error e)
      | Ok _ ->
          let s = r.Rewriter.stats in
          let degraded =
            s.Stats.failed > 0
            || (Fault.fired fault Fault.Alloc > 0 && s.Stats.b0 > 0)
          in
          Ok ((if degraded then Degraded else Full), Some r))

(* Allocator exhaustion with the B0 fallback on must degrade every site
   to B0 — zero failures, the paper's always-succeeds guarantee under
   injected starvation. *)
let run_b0_exhaustion_leg case =
  let elf, disasm_from, select = Fuzz.prepare case in
  let options =
    { case.Fuzz.options with
      Rewriter.shard_span;
      tactics = { case.Fuzz.options.Rewriter.tactics with
                  Tactics.b0_fallback = true } }
  in
  let fault = Fault.create [ { Fault.site = Fault.Alloc; trigger = From 0 } ] in
  match
    Rewriter.run ~options ~fault ~jobs:1 ?disasm_from elf ~select
      ~template:(fun _ -> Trampoline.Empty)
  with
  | exception Rewriter.Error m -> Error ("b0 leg: rewriter: " ^ m)
  | exception Frontend.Error m -> Error ("b0 leg: frontend: " ^ m)
  | r -> (
      let s = r.Rewriter.stats in
      if s.Stats.failed > 0 then
        Error
          (Printf.sprintf
             "b0 leg: %d sites failed under alloc exhaustion + b0_fallback"
             s.Stats.failed)
      else if Stats.succeeded s <> s.Stats.b0 then
        Error
          (Printf.sprintf
             "b0 leg: %d sites succeeded but only %d on B0 under total \
              alloc exhaustion"
             (Stats.succeeded s) s.Stats.b0)
      else
        match Static.verify ?disasm_from ~original:elf r.Rewriter.output with
        | Error e ->
            Error
              (Format.asprintf "b0 leg: output rejected: %a" Static.pp_error e)
        | Ok _ -> Ok s.Stats.b0)

(* Serialization faults: write the rewrite out with [Write] rules
   driving the short-write hook. Either the complete file lands and
   re-reads, or [Io_error] is raised and nothing exists at the path. *)
let run_write_leg f (r : Rewriter.result) =
  let path = Filename.temp_file "e9_inject" ".bin" in
  Sys.remove path;
  let wfault = Fault.create f.schedule in
  let fired = ref false in
  let fault () =
    let v = Fault.fires wfault Fault.Write in
    if v then fired := true;
    v
  in
  let cleanup () = if Sys.file_exists path then Sys.remove path in
  match Elf_file.write_file ~fault r.Rewriter.output path with
  | exception Elf_file.Io_error _ ->
      if Sys.file_exists path then begin
        cleanup ();
        Error "write leg: Io_error but a file exists at the destination"
      end
      else if Sys.file_exists (path ^ ".tmp") then begin
        Sys.remove (path ^ ".tmp");
        Error "write leg: Io_error left a temp file behind"
      end
      else Ok (if !fired then 1 else 0)
  | () -> (
      match Elf_file.read_file path with
      | exception Elf_file.Malformed m ->
          cleanup ();
          Error ("write leg: written file does not re-read: " ^ m)
      | _ ->
          cleanup ();
          Ok 0)

(* Trace-sink faults: export a ring trace with [Trace] rules driving the
   sink hook; a refused write must raise [Sink_error] and leave no
   file. *)
let run_trace_leg f (r : Rewriter.result) =
  ignore r;
  let path = Filename.temp_file "e9_inject" ".ndjson" in
  Sys.remove path;
  let tfault = Fault.create f.schedule in
  let fired = ref false in
  let fault () =
    let v = Fault.fires tfault Fault.Trace in
    if v then fired := true;
    v
  in
  let obs = Obs.ring ~capacity:64 () in
  Obs.gauge obs ~name:"inject.leg" ~value:1;
  let cleanup () = if Sys.file_exists path then Sys.remove path in
  match Obs.write_ndjson ~fault obs path with
  | exception Obs.Sink_error _ ->
      if Sys.file_exists path then begin
        cleanup ();
        Error "trace leg: Sink_error but a file exists at the destination"
      end
      else Ok (if !fired then 1 else 0)
  | () -> (
      let s = In_channel.with_open_text path In_channel.input_all in
      cleanup ();
      match Obs.validate_ndjson s with
      | Ok _ -> Ok 0
      | Error m -> Error ("trace leg: written trace invalid: " ^ m))

type summary = {
  cases : int;
  full : int;
  degraded : int;
  typed : int;
  skipped : int;  (** profiles that failed to generate (Codegen.Error) *)
  b0_sites : int;  (** sites degraded to B0 in the exhaustion legs *)
  write_faults : int;
  trace_faults : int;
  jobs_checked : int;
  failures : (string * string) list;  (** case, contract violation *)
}

let pp_summary ppf s =
  Format.fprintf ppf
    "%d fault cases: %d full, %d degraded, %d typed, %d skipped, \
     %d violations; %d sites degraded to B0 under exhaustion; %d write \
     faults and %d trace faults contained; %d jobs-invariance checks"
    s.cases s.full s.degraded s.typed s.skipped
    (List.length s.failures)
    s.b0_sites s.write_faults s.trace_faults s.jobs_checked

(* One full case: primary leg, jobs-invariance legs, B0-exhaustion leg,
   and the file-write/trace legs when the primary leg produced output. *)
let run_fcase f =
  let fail m = Error m in
  match run_leg ~jobs:1 f with
  | exception Codegen.Error _ -> Ok None
  | Error m -> fail m
  | Ok (o1, r1) -> (
      (* Same schedule, fresh counters, more domains: outputs must be
         byte-identical (or the identical typed refusal). *)
      let rec invariance = function
        | [] -> Ok ()
        | jobs :: rest -> (
            match run_leg ~jobs f with
            | Error m -> fail (Printf.sprintf "jobs=%d: %s" jobs m)
            | Ok (on, rn) -> (
                if not (same_outcome o1 on) then
                  fail
                    (Printf.sprintf "jobs=%d outcome %s differs from jobs=1 %s"
                       jobs (outcome_name on) (outcome_name o1))
                else
                  match (r1, rn) with
                  | Some a, Some b
                    when not
                           (Bytes.equal
                              (Elf_file.to_bytes a.Rewriter.output)
                              (Elf_file.to_bytes b.Rewriter.output)) ->
                      fail
                        (Printf.sprintf
                           "jobs=%d output bytes differ from jobs=1 under \
                            the same fault schedule"
                           jobs)
                  | Some a, Some b when a.Rewriter.stats <> b.Rewriter.stats ->
                      fail (Printf.sprintf "jobs=%d stats differ" jobs)
                  | _ -> invariance rest))
      in
      match invariance [ 2; 4 ] with
      | Error m -> fail m
      | Ok () -> (
          match run_b0_exhaustion_leg f.case with
          | Error m -> fail m
          | Ok b0 -> (
              let wt =
                match r1 with
                | None -> Ok (0, 0)
                | Some r -> (
                    match run_write_leg f r with
                    | Error m -> Error m
                    | Ok w -> (
                        match run_trace_leg f r with
                        | Error m -> Error m
                        | Ok t -> Ok (w, t)))
              in
              match wt with
              | Error m -> fail m
              | Ok (w, t) -> Ok (Some (o1, b0, w, t)))))

let campaign ?(progress = fun _ -> ()) ~n ~seed () =
  let rand = Random.State.make [| seed |] in
  let s =
    ref
      { cases = 0;
        full = 0;
        degraded = 0;
        typed = 0;
        skipped = 0;
        b0_sites = 0;
        write_faults = 0;
        trace_faults = 0;
        jobs_checked = 0;
        failures = [] }
  in
  for i = 1 to n do
    let f = QCheck2.Gen.generate1 ~rand gen_fcase in
    (match run_fcase f with
    | Ok None -> s := { !s with cases = !s.cases + 1; skipped = !s.skipped + 1 }
    | Ok (Some (o, b0, w, t)) ->
        s :=
          { !s with
            cases = !s.cases + 1;
            full = (!s.full + match o with Full -> 1 | _ -> 0);
            degraded = (!s.degraded + match o with Degraded -> 1 | _ -> 0);
            typed = (!s.typed + match o with Typed _ -> 1 | _ -> 0);
            b0_sites = !s.b0_sites + b0;
            write_faults = !s.write_faults + w;
            trace_faults = !s.trace_faults + t;
            jobs_checked = !s.jobs_checked + 2 }
    | Error m ->
        s :=
          { !s with
            cases = !s.cases + 1;
            failures = (fcase_to_string f, m) :: !s.failures });
    progress i
  done;
  { !s with failures = List.rev !s.failures }

let property ?(count = 40)
    ?(name = "every injected fault degrades, accounts, or types") () =
  QCheck2.Test.make ~count ~name ~print:fcase_to_string gen_fcase (fun f ->
      match run_fcase f with
      | Ok _ -> true
      | Error m -> QCheck2.Test.fail_reportf "%s" m)

let summary_json s =
  Json.Obj
    [ ("cases", Json.Int s.cases);
      ("full", Json.Int s.full);
      ("degraded", Json.Int s.degraded);
      ("typed", Json.Int s.typed);
      ("skipped", Json.Int s.skipped);
      ("violations", Json.Int (List.length s.failures));
      ("b0_sites", Json.Int s.b0_sites);
      ("write_faults", Json.Int s.write_faults);
      ("trace_faults", Json.Int s.trace_faults);
      ("jobs_checked", Json.Int s.jobs_checked) ]

(** Independent static verification of a rewritten binary.

    Given only the original and the rewritten {!Elf_file.t}, [verify]
    re-derives the §2 rewriting contract from the bytes alone — it never
    consults the rewriter's [patched_sites] bookkeeping:

    - it diffs the text and classifies every changed byte by decoding
      forward from each change: a patch jump, a punned jump's overhang, a
      T2 evictee rewrite, a T3 victim rewrite, a T3 short jump, or a B0
      trap;
    - it follows every punned [jmp rel32] to its trampoline, checks the
      trampoline lies inside the reserved virtual-address region (mapped by
      the metadata table or by the injected loader stub) and collides with
      no [PT_LOAD] page of the original image;
    - it decodes each trampoline and verifies its terminal transfer returns
      control to the correct continuation address for the instruction that
      was displaced from the served patch site;
    - any changed byte it cannot account for is a verification failure.

    The verifier understands both loader modes: the host-side mapping
    table ([.e9patch.mmap]) and the injected stub (entry point redirected
    into a segment at {!E9_core.Loader_stub.home}), whose mapping table it
    recovers by decoding the stub's own code. *)

(** What a changed (or diversion-covered) byte turned out to be. *)
type byte_class =
  | Patch_jump  (** a (possibly prefixed) [jmp rel32] at a patched site *)
  | Pun_overhang
      (** diversion bytes beyond the original instruction's length *)
  | T2_evictee
      (** a boundary jump whose bytes an earlier diversion puns over *)
  | T3_victim  (** a jump written into (or punned over) a T3 victim *)
  | Short_jump  (** the 2-byte [jmp rel8] at a T3 patch site *)
  | Trap  (** a B0 [int3] *)

val class_name : byte_class -> string

type report = {
  changed_bytes : int;  (** text bytes that differ from the original *)
  diversions : int;  (** [jmp rel32] diversions discovered and followed *)
  short_jumps : int;
  traps : int;
  trampolines_checked : int;
  classified : (int * byte_class) list;
      (** every changed byte, ascending by address *)
}

type error = { addr : int; reason : string }

val pp_report : Format.formatter -> report -> unit
val pp_error : Format.formatter -> error -> unit

(** [verify ?disasm_from ?holes ~original rewritten] re-derives and
    checks the rewriting contract. [disasm_from] is the ChromeMain
    workaround: the address linear disassembly of the original started at
    (changed bytes before it are rejected, since the rewriter never
    patches data). [holes] are interior data extents the rewrite excluded
    ({!Frontend.disassemble_excluding}); when non-empty they replace the
    plain sweep (and [disasm_from] is ignored), so the verifier's
    boundary map matches the one the rewriting used instead of growing
    phantoms inside the islands. *)
val verify :
  ?disasm_from:int ->
  ?holes:(int * int) list ->
  original:Elf_file.t ->
  Elf_file.t ->
  (report, error) result

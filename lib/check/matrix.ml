module Codegen = E9_workload.Codegen
module Adversary = E9_workload.Adversary
module Rewriter = E9_core.Rewriter
module Tactics = E9_core.Tactics
module Trampoline = E9_core.Trampoline
module Stats = E9_core.Stats
module Obs = E9_obs.Obs
module Json = E9_obs.Json
module Cpu = E9_emu.Cpu
module Buf = E9_bits.Buf

type score = {
  family : Adversary.family;
  sites : int;
  patched : int;
  patched_pct : float;
  stats : Stats.t;
  agg : Obs.Agg.agg;
  static_err : string option;
  trace_err : string option;
  jobs_identical : bool;
  anchors_ok : bool;
  islands_kept : bool;
  wall_s : float;
}

(* A small span forces the corpus binaries (tens of KiB of text) through
   the genuinely sharded path, so jobs 1 vs 4 compares the parallel
   algorithm against itself, not serial against serial. *)
let shard_span = 4096

let trace_config = { Cpu.default_config with Cpu.fuel = 50_000_000 }

let options_of (f : Adversary.family) ~keep_ranges =
  { Rewriter.default_options with
    Rewriter.tactics =
      { Tactics.default_options with Tactics.b0_fallback = true };
    reserve_below_base = f.Adversary.profile.Codegen.shared_object;
    shard_span;
    keep_ranges }

let select_of (f : Adversary.family) =
  match f.Adversary.selector with
  | Adversary.Jumps -> Frontend.select_jumps
  | Adversary.Heap_writes -> Frontend.select_heap_writes

(* Interpret a family descriptor into a concrete rewrite setup: the input
   binary (stripped round-trip applied if asked), the island exclusion
   ranges, and the frontend that honors them. *)
let prepare (f : Adversary.family) =
  let generated = Codegen.generate f.Adversary.profile in
  let holes = Codegen.islands generated in
  let elf =
    if f.Adversary.strip then
      Elf_file.of_bytes (Elf_file.to_bytes_stripped generated)
    else generated
  in
  let frontend =
    match holes with
    | [] -> None
    | holes -> Some (fun e -> Frontend.disassemble_excluding ~holes e)
  in
  (elf, holes, frontend)

let byte_range elf ~addr ~len =
  match Frontend.find_text elf with
  | None -> Bytes.empty
  | Some t ->
      Buf.sub elf.Elf_file.data
        ~pos:(t.Frontend.offset + addr - t.Frontend.base)
        ~len

let score_family ?(jobs = (1, 4)) (f : Adversary.family) =
  let t0 = Unix.gettimeofday () in
  let elf, holes, frontend = prepare f in
  let options = options_of f ~keep_ranges:holes in
  let select = select_of f in
  let obs = Obs.aggregator () in
  let j1, j2 = jobs in
  let run ?obs j =
    Rewriter.run ~options ?obs ?frontend ~jobs:j elf ~select
      ~template:(fun _ -> Trampoline.Empty)
  in
  let r = run ~obs j1 in
  let r' = run j2 in
  let jobs_identical =
    Bytes.equal
      (Elf_file.to_bytes r.Rewriter.output)
      (Elf_file.to_bytes r'.Rewriter.output)
    && r.Rewriter.stats = r'.Rewriter.stats
  in
  let static_err =
    match Static.verify ~holes ~original:elf r.Rewriter.output with
    | Ok _ -> None
    | Error e -> Some (Format.asprintf "%a" Static.pp_error e)
  in
  let trace_err =
    match
      Trace.compare_runs ~config:trace_config ~holes ~original:elf
        r.Rewriter.output
    with
    | Ok _ -> None
    | Error msg -> Some msg
  in
  (* endbr64 families carry an anchor-count ground truth: the decode must
     see exactly one marker per function entry plus one at main. *)
  let anchors_ok =
    if not f.Adversary.profile.Codegen.endbr64_entries then true
    else
      let disassemble =
        match frontend with
        | Some fe -> fe
        | None -> fun e -> Frontend.disassemble e
      in
      let _, sites = disassemble elf in
      let anchors =
        List.length
          (List.filter
             (fun (s : Frontend.site) -> s.Frontend.insn = E9_x86.Insn.Endbr64)
             sites)
      in
      anchors = f.Adversary.profile.Codegen.functions + 1
  in
  (* Island families: every excluded byte must survive the rewrite. *)
  let islands_kept =
    List.for_all
      (fun (addr, len) ->
        Bytes.equal
          (byte_range elf ~addr ~len)
          (byte_range r.Rewriter.output ~addr ~len))
      holes
  in
  let stats = r.Rewriter.stats in
  let sites = Stats.total stats in
  let patched = Stats.succeeded stats in
  { family = f;
    sites;
    patched;
    patched_pct = Stats.succ_pct stats;
    stats;
    agg = Obs.agg obs;
    static_err;
    trace_err;
    jobs_identical;
    anchors_ok;
    islands_kept;
    wall_s = Unix.gettimeofday () -. t0 }

(* The regression wall: one typed verdict per family, so CI failures name
   the property that regressed rather than a generic mismatch. *)
let verdict (s : score) =
  let f = s.family in
  if s.sites = 0 then Error "no sites selected"
  else if s.patched_pct < f.Adversary.floor_pct then
    Error
      (Printf.sprintf "patched %.1f%% below pinned floor %.1f%%"
         s.patched_pct f.Adversary.floor_pct)
  else
    match s.static_err with
    | Some e -> Error ("static verifier: " ^ e)
    | None -> (
        match s.trace_err with
        | Some e -> Error ("trace oracle: " ^ e)
        | None ->
            if not s.jobs_identical then
              Error "output differs between jobs 1 and 4"
            else if not s.anchors_ok then
              Error "endbr64 anchor count disagrees with ground truth"
            else if not s.islands_kept then
              Error "island bytes were modified by the rewrite"
            else if
              f.Adversary.expect_pressure
              && s.stats.Stats.t3 + s.stats.Stats.b0 = 0
            then
              Error
                "expected tactic-ladder pressure (T3 or B0) but none fired"
            else Ok ())

let passed s = match verdict s with Ok () -> true | Error _ -> false

let run ?(progress = fun _ -> ()) () =
  List.mapi
    (fun i f ->
      let s = score_family f in
      progress (i + 1);
      s)
    Adversary.families

let score_json (s : score) =
  let f = s.family in
  Json.Obj
    [ ("family", Json.Str f.Adversary.name);
      ("blurb", Json.Str f.Adversary.blurb);
      ("selector", Json.Str (Adversary.selector_name f.Adversary.selector));
      ("stripped", Json.Bool f.Adversary.strip);
      ("sites", Json.Int s.sites);
      ("patched", Json.Int s.patched);
      ("patched_pct", Json.Float s.patched_pct);
      ("floor_pct", Json.Float f.Adversary.floor_pct);
      ("mix",
       Json.Obj
         [ ("b0", Json.Int s.stats.Stats.b0);
           ("b1", Json.Int s.stats.Stats.b1);
           ("b2", Json.Int s.stats.Stats.b2);
           ("t1", Json.Int s.stats.Stats.t1);
           ("t2", Json.Int s.stats.Stats.t2);
           ("t3", Json.Int s.stats.Stats.t3);
           ("failed", Json.Int s.stats.Stats.failed) ]);
      ("tactics", Obs.Agg.tactics_json s.agg);
      ("static",
       match s.static_err with
       | None -> Json.Str "ok"
       | Some e -> Json.Str e);
      ("trace",
       match s.trace_err with None -> Json.Str "ok" | Some e -> Json.Str e);
      ("jobs_identical", Json.Bool s.jobs_identical);
      ("anchors_ok", Json.Bool s.anchors_ok);
      ("islands_kept", Json.Bool s.islands_kept);
      ("pass", Json.Bool (passed s));
      ("wall_s", Json.Float s.wall_s) ]

let to_json scores =
  Json.Obj
    [ ("schema", Json.Str "e9repro-robustness/1");
      ("families", Json.List (List.map score_json scores));
      ("passed", Json.Bool (List.for_all passed scores)) ]

let pp_score ppf (s : score) =
  let f = s.family in
  Format.fprintf ppf
    "%-11s %-11s %5d sites %6.1f%% patched (floor %5.1f%%)  \
     mix b0=%d b1=%d b2=%d t1=%d t2=%d t3=%d  %s"
    f.Adversary.name
    (Adversary.selector_name f.Adversary.selector)
    s.sites s.patched_pct f.Adversary.floor_pct s.stats.Stats.b0
    s.stats.Stats.b1 s.stats.Stats.b2 s.stats.Stats.t1 s.stats.Stats.t2
    s.stats.Stats.t3
    (match verdict s with Ok () -> "PASS" | Error e -> "FAIL: " ^ e)

let pp ppf scores =
  List.iter (fun s -> Format.fprintf ppf "%a@." pp_score s) scores;
  let failed = List.filter (fun s -> not (passed s)) scores in
  Format.fprintf ppf "%d/%d families pass@."
    (List.length scores - List.length failed)
    (List.length scores)

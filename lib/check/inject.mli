(** The fault-injection campaign (DESIGN.md §11).

    Crosses random rewrite cases ({!Fuzz.gen_case}) with random fault
    schedules over the {!E9_fault.Fault} sites and checks the hardening
    contract: every injected fault lands in exactly one of three
    permitted outcomes —

    + {e degraded-but-verified}: the tactic search fell through (to B0
      when [b0_fallback] is on), the output passes {!Static.verify};
    + {e accounted}: sites failed, counted in [Stats.failed], output
      still verified;
    + {e typed}: [Rewriter.Error] / [Frontend.Error] raised, no partial
      output file.

    Anything else — an uncaught exception, a verifier rejection, a
    half-written file — is a contract violation and fails the case.
    Each case additionally checks jobs-invariance under the same fault
    schedule (jobs 1/2/4, byte-identical outputs or identical typed
    refusals), total-allocator-exhaustion degradation to 100% B0, and
    short-write containment for ELF serialization and trace sinks. *)

type fcase = { case : Fuzz.case; schedule : E9_fault.Fault.rule list }

val fcase_to_string : fcase -> string
val gen_schedule : E9_fault.Fault.rule list QCheck2.Gen.t
val gen_fcase : fcase QCheck2.Gen.t

type outcome =
  | Full  (** rewrite + static verification OK, no site failed *)
  | Degraded  (** verified, but sites failed or fell back to B0 *)
  | Typed of string  (** typed refusal, nothing half-written *)

(** [run_leg ?jobs f] rewrites [f.case] under [f.schedule] and
    classifies. [Error] = contract violation. The rewrite result is
    returned when one was produced. *)
val run_leg :
  ?jobs:int ->
  fcase ->
  (outcome * E9_core.Rewriter.result option, string) result

(** [run_b0_exhaustion_leg case] starves every jump-tactic allocation
    ([alloc@0+]) with [b0_fallback] forced on and requires 100% of sites
    to land on B0 with a verified output; returns the B0 site count. *)
val run_b0_exhaustion_leg : Fuzz.case -> (int, string) result

(** [run_fcase f] runs all legs for one case. [Ok None] = the profile
    could not be generated (skip-and-report); [Ok (Some (outcome,
    b0_sites, write_faults, trace_faults))] = contract held. *)
val run_fcase :
  fcase -> ((outcome * int * int * int) option, string) result

type summary = {
  cases : int;
  full : int;
  degraded : int;
  typed : int;
  skipped : int;  (** profiles that failed to generate (Codegen.Error) *)
  b0_sites : int;  (** sites degraded to B0 in the exhaustion legs *)
  write_faults : int;
  trace_faults : int;
  jobs_checked : int;
  failures : (string * string) list;  (** case, contract violation *)
}

val pp_summary : Format.formatter -> summary -> unit

(** JSON rollup for BENCH_throughput.json's [faults] object. *)
val summary_json : summary -> E9_obs.Json.t

(** [campaign ?progress ~n ~seed ()] runs [n] random fault cases from a
    fixed seed; deterministic given [(n, seed)]. *)
val campaign : ?progress:(int -> unit) -> n:int -> seed:int -> unit -> summary

(** The QCheck property (shrinking enabled), for the test suite. *)
val property : ?count:int -> ?name:string -> unit -> QCheck2.Test.t

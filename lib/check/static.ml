module Buf = E9_bits.Buf
module Insn = E9_x86.Insn
module Reg = E9_x86.Reg
module Decode = E9_x86.Decode

type byte_class =
  | Patch_jump
  | Pun_overhang
  | T2_evictee
  | T3_victim
  | Short_jump
  | Trap

let class_name = function
  | Patch_jump -> "patch-jump"
  | Pun_overhang -> "pun-overhang"
  | T2_evictee -> "t2-evictee"
  | T3_victim -> "t3-victim"
  | Short_jump -> "short-jump"
  | Trap -> "trap"

type report = {
  changed_bytes : int;
  diversions : int;
  short_jumps : int;
  traps : int;
  trampolines_checked : int;
  classified : (int * byte_class) list;
}

type error = { addr : int; reason : string }

let pp_report ppf r =
  let count c =
    List.length (List.filter (fun (_, c') -> c' = c) r.classified)
  in
  Format.fprintf ppf
    "%d changed bytes (%d patch-jump, %d overhang, %d t2-evictee, %d \
     t3-victim, %d short, %d trap); %d diversions, %d trampolines verified"
    r.changed_bytes (count Patch_jump) (count Pun_overhang) (count T2_evictee)
    (count T3_victim) (count Short_jump) (count Trap) r.diversions
    r.trampolines_checked

let pp_error ppf e =
  Format.fprintf ppf "verification failed at 0x%x: %s" e.addr e.reason

exception Fail of error

let fail addr fmt =
  Printf.ksprintf (fun s -> raise (Fail { addr; reason = s })) fmt

(* The T1 padding prefixes (semantically inert on a near jump); mirrors
   Tactics.pad_prefixes but is derived here independently — the verifier
   accepts exactly the prefixes that do not change [jmp rel32]. *)
let pad_set = [ 0x48; 0x26; 0x2e; 0x36; 0x3e; 0x64; 0x65 ]

(* A prefixed jump is at most 7 distinct prefixes + cycle slack; instruction
   encodings in the subset never exceed 15 bytes + padding, so a diversion
   covering byte [a] starts no earlier than [a - 18]. *)
let max_scan_back = 18
let max_tramp_insns = 4096
let page = 4096

type jmp_div = { start : int; jlen : int; target : int }

let e9_sections =
  [ ".e9patch.tramp"; Elf_file.mmap_section_name; Elf_file.trap_section_name ]

let verify ?disasm_from ?(holes = []) ~original rewritten =
  try
    (* ---- structural prelude ------------------------------------- *)
    let otext =
      match Frontend.find_text original with
      | Some t -> t
      | None -> fail 0 "original has no text section or executable segment"
    in
    let rtext =
      match Frontend.find_text rewritten with
      | Some t -> t
      | None -> fail 0 "rewritten binary has no text"
    in
    if
      rtext.Frontend.base <> otext.Frontend.base
      || rtext.Frontend.offset <> otext.Frontend.offset
      || rtext.Frontend.size <> otext.Frontend.size
    then
      fail rtext.Frontend.base
        "text geometry changed (base/offset/size must be preserved in place)";
    List.iter
      (fun name ->
        if Elf_file.find_section original name <> None then
          fail 0 "original already contains rewriter section %s" name)
      e9_sections;
    let od = Buf.length original.Elf_file.data in
    let rd = Buf.length rewritten.Elf_file.data in
    if rd < od then fail 0 "rewritten image is smaller than the original";
    (* Every original byte outside the text must be preserved. *)
    let obytes = Buf.sub original.Elf_file.data ~pos:0 ~len:od in
    let rbytes = Buf.sub rewritten.Elf_file.data ~pos:0 ~len:od in
    let t_lo = otext.Frontend.offset
    and t_hi = otext.Frontend.offset + otext.Frontend.size in
    (* ELF header and program-header-table bytes are regenerated at
       serialization time and legitimately differ once content is appended:
       e_shoff always moves; e_entry changes in stub mode; e_phnum/e_shnum/
       e_shstrndx and the appended phdr slots grow with the extra
       segments/sections. Each of those is validated from the parsed
       structures below, so the byte ranges are exempt here — everything
       else must match. *)
    let ehdr_size = 64 and phent_size = 56 in
    let n_oseg = List.length original.Elf_file.segments
    and n_rseg = List.length rewritten.Elf_file.segments in
    let header_managed i =
      (i >= 40 && i < 48)
      || (i >= 24 && i < 32
         && rewritten.Elf_file.entry <> original.Elf_file.entry)
      || (i >= 56 && i < 58 && n_rseg <> n_oseg)
      || (i >= 60 && i < 64
         && List.length rewritten.Elf_file.sections
            <> List.length original.Elf_file.sections)
      || (i >= ehdr_size + (n_oseg * phent_size)
         && i < ehdr_size + (n_rseg * phent_size))
    in
    for i = 0 to od - 1 do
      if
        (i < t_lo || i >= t_hi)
        && (not (header_managed i))
        && Bytes.get obytes i <> Bytes.get rbytes i
      then fail i "non-text byte at file offset %d changed" i
    done;
    (* Original segments must survive verbatim; the only permitted extra is
       the injected loader stub. *)
    let rec extra_segments os rs =
      match (os, rs) with
      | [], extras -> extras
      | o :: os', r :: rs' when o = r -> extra_segments os' rs'
      | (o : Elf_file.segment) :: _, _ ->
          fail o.Elf_file.vaddr "an original program header was altered"
    in
    let extra_segs =
      extra_segments original.Elf_file.segments rewritten.Elf_file.segments
    in
    let rec extra_sections os rs =
      match (os, rs) with
      | [], extras -> extras
      | o :: os', r :: rs' when o = r -> extra_sections os' rs'
      | (o : Elf_file.section) :: _, _ ->
          fail o.Elf_file.addr "an original section header was altered"
    in
    List.iter
      (fun (s : Elf_file.section) ->
        if not (List.mem s.Elf_file.name e9_sections) then
          fail s.Elf_file.addr "unexpected appended section %s" s.Elf_file.name)
      (extra_sections original.Elf_file.sections rewritten.Elf_file.sections);
    (* ---- mapping recovery (table or stub loader) ----------------- *)
    let stub_mode = rewritten.Elf_file.entry <> original.Elf_file.entry in
    let mappings =
      if not stub_mode then begin
        (match extra_segs with
        | [] -> ()
        | s :: _ ->
            fail s.Elf_file.vaddr
              "extra program header without a loader-stub entry change");
        match Elf_file.find_section rewritten Elf_file.mmap_section_name with
        | None -> []
        | Some sec ->
            Loadmap.decode_mappings (Elf_file.section_bytes rewritten sec)
      end
      else begin
        match extra_segs with
        | [ seg ]
          when seg.Elf_file.ptype = Elf_file.Load
               && rewritten.Elf_file.entry >= seg.Elf_file.vaddr
               && rewritten.Elf_file.entry
                  < seg.Elf_file.vaddr + seg.Elf_file.filesz ->
            (* Recover the mapping table the way the stub itself finds it:
               decode the stub code from the new entry and read the table
               bounds out of its movabs immediates. *)
            let content =
              Buf.sub rewritten.Elf_file.data ~pos:seg.Elf_file.offset
                ~len:seg.Elf_file.filesz
            in
            let imm = Hashtbl.create 8 in
            let pos = ref (rewritten.Elf_file.entry - seg.Elf_file.vaddr) in
            let steps = ref 0 in
            let finished = ref false in
            while (not !finished) && !steps < 256 do
              if !pos < 0 || !pos >= Bytes.length content then
                fail rewritten.Elf_file.entry "stub decoding ran off its segment";
              let d = Decode.decode content !pos in
              (match d.Decode.insn with
              | Insn.Movabs (r, v) ->
                  Hashtbl.replace imm (Reg.index r) (Int64.to_int v)
              | Insn.Jmp_ind (Insn.Reg r) -> (
                  match Hashtbl.find_opt imm (Reg.index r) with
                  | Some real when real = original.Elf_file.entry ->
                      finished := true
                  | _ ->
                      fail rewritten.Elf_file.entry
                        "stub terminal jump does not reach the original entry")
              | Insn.Jmp_ind (Insn.Mem m) when m.Insn.rip_rel ->
                  (* jmp through a rip-relative entry slot *)
                  let slot = !pos + d.Decode.len + m.Insn.disp in
                  if slot < 0 || slot + 8 > Bytes.length content then
                    fail rewritten.Elf_file.entry
                      "stub entry slot outside its segment";
                  let real =
                    Int64.to_int (Bytes.get_int64_le content slot)
                  in
                  if real = original.Elf_file.entry then finished := true
                  else
                    fail rewritten.Elf_file.entry
                      "stub terminal jump does not reach the original entry"
              | Insn.Int3 | Insn.Ud2 | Insn.Unknown _ ->
                  fail
                    (seg.Elf_file.vaddr + !pos)
                    "undecodable instruction in loader stub"
              | _ -> ());
              pos := !pos + d.Decode.len;
              incr steps
            done;
            if not !finished then
              fail rewritten.Elf_file.entry
                "loader stub never jumps to the original entry";
            let t_addr =
              match Hashtbl.find_opt imm (Reg.index Reg.R14) with
              | Some v -> v
              | None -> fail rewritten.Elf_file.entry "stub has no table base"
            in
            let t_end =
              match Hashtbl.find_opt imm (Reg.index Reg.R15) with
              | Some v -> v
              | None -> fail rewritten.Elf_file.entry "stub has no table end"
            in
            if
              t_addr < seg.Elf_file.vaddr
              || t_end > seg.Elf_file.vaddr + seg.Elf_file.filesz
              || t_end < t_addr
              || (t_end - t_addr) mod 32 <> 0
            then fail t_addr "stub mapping table out of bounds";
            Loadmap.decode_mappings
              (Bytes.sub content (t_addr - seg.Elf_file.vaddr) (t_end - t_addr))
        | _ ->
            fail rewritten.Elf_file.entry
              "entry changed but no valid loader-stub segment was added"
      end
    in
    (* ---- mapping sanity ------------------------------------------ *)
    let sorted =
      List.sort
        (fun (a : Loadmap.mapping) b -> compare a.Loadmap.vaddr b.Loadmap.vaddr)
        mappings
    in
    let rec disjoint = function
      | (a : Loadmap.mapping) :: (b :: _ as rest) ->
          if a.Loadmap.vaddr + a.Loadmap.len > b.Loadmap.vaddr then
            fail b.Loadmap.vaddr "trampoline mappings overlap";
          disjoint rest
      | _ -> ()
    in
    disjoint sorted;
    List.iter
      (fun (m : Loadmap.mapping) ->
        if m.Loadmap.len <= 0 then fail m.Loadmap.vaddr "empty mapping";
        if m.Loadmap.vaddr < 0x10000 then
          fail m.Loadmap.vaddr "mapping inside the NULL guard";
        if m.Loadmap.vaddr + m.Loadmap.len > 1 lsl 47 then
          fail m.Loadmap.vaddr "mapping beyond the canonical address limit";
        if m.Loadmap.file_off < od || m.Loadmap.file_off + m.Loadmap.len > rd
        then
          fail m.Loadmap.vaddr
            "mapping references bytes outside the appended region";
        List.iter
          (fun (seg : Elf_file.segment) ->
            if seg.Elf_file.ptype = Elf_file.Load then begin
              let lo = seg.Elf_file.vaddr / page * page in
              let hi =
                (seg.Elf_file.vaddr + seg.Elf_file.memsz + page - 1)
                / page * page
              in
              if m.Loadmap.vaddr < hi && m.Loadmap.vaddr + m.Loadmap.len > lo
              then
                fail m.Loadmap.vaddr
                  "mapping collides with the PT_LOAD segment at 0x%x"
                  seg.Elf_file.vaddr
            end)
          rewritten.Elf_file.segments)
      mappings;
    let marr = Array.of_list sorted in
    let mapping_at va =
      let rec go lo hi =
        if lo > hi then None
        else
          let mid = (lo + hi) / 2 in
          let m = marr.(mid) in
          if va < m.Loadmap.vaddr then go lo (mid - 1)
          else if va >= m.Loadmap.vaddr + m.Loadmap.len then go (mid + 1) hi
          else Some m
      in
      go 0 (Array.length marr - 1)
    in
    let tramp_byte va =
      match mapping_at va with
      | Some m ->
          Some
            (Buf.get_u8 rewritten.Elf_file.data
               (m.Loadmap.file_off + (va - m.Loadmap.vaddr)))
      | None -> None
    in
    (* ---- B0 trap table ------------------------------------------- *)
    let trap_tbl = Hashtbl.create 8 in
    (match Elf_file.find_section rewritten Elf_file.trap_section_name with
    | Some sec ->
        List.iter
          (fun (t : Loadmap.trap) ->
            Hashtbl.replace trap_tbl t.Loadmap.patch_addr
              t.Loadmap.trampoline_addr)
          (Loadmap.decode_traps (Elf_file.section_bytes rewritten sec))
    | None -> ());
    (* ---- original instruction boundaries ------------------------- *)
    (* With interior data islands the plain sweep desynchronizes and the
       boundary map grows phantoms; the hole-aware sweep reproduces the
       boundary set the rewriting itself used. *)
    let _, sites =
      match holes with
      | [] -> Frontend.disassemble ?from:disasm_from original
      | holes -> Frontend.disassemble_excluding ~holes original
    in
    let bounds = Hashtbl.create 4096 in
    List.iter
      (fun (s : Frontend.site) ->
        Hashtbl.replace bounds s.Frontend.addr (s.Frontend.len, s.Frontend.insn))
      sites;
    let disasm_lo =
      match disasm_from with None -> otext.Frontend.base | Some a -> a
    in
    let text_hi = otext.Frontend.base + otext.Frontend.size in
    let in_disasm a = a >= disasm_lo && a < text_hi in
    (* ---- text diff ----------------------------------------------- *)
    let before =
      Buf.sub original.Elf_file.data ~pos:otext.Frontend.offset
        ~len:otext.Frontend.size
    in
    let after =
      Buf.sub rewritten.Elf_file.data ~pos:otext.Frontend.offset
        ~len:otext.Frontend.size
    in
    let changed = ref [] in
    for i = otext.Frontend.size - 1 downto 0 do
      if Bytes.get before i <> Bytes.get after i then
        changed := (otext.Frontend.base + i) :: !changed
    done;
    let changed = !changed in
    let rbyte a = Char.code (Bytes.get after (a - otext.Frontend.base)) in
    let decode_after a = Decode.decode after (a - otext.Frontend.base) in
    (* Decode the rewritten bytes at [s]: a valid diversion jump is a
       (possibly pad-prefixed) [jmp rel32] whose target lands inside a
       trampoline mapping — the strong disambiguator that rules out stray
       byte patterns. *)
    let diversion_at s =
      if s < disasm_lo || s >= text_hi then None
      else
        let d = decode_after s in
        match d.Decode.insn with
        | Insn.Jmp rel
          when List.for_all (fun p -> List.mem p pad_set) d.Decode.prefixes
               && s + d.Decode.len <= text_hi ->
            let target = s + d.Decode.len + rel in
            if mapping_at target <> None then
              Some { start = s; jlen = d.Decode.len; target }
            else None
        | _ -> None
    in
    (* ---- diversion discovery ------------------------------------- *)
    let covered = Hashtbl.create 256 in
    let cover lo len = for a = lo to lo + len - 1 do Hashtbl.replace covered a () done in
    let jmps = ref [] in
    let shorts = ref [] (* (patch site, jp target) *) in
    let add_jmp j =
      jmps := j :: !jmps;
      cover j.start j.jlen
    in
    (* Pure function of the rewritten bytes: does some instruction boundary
       within rel8 range hold a short jump targeting [c]? Subsumes the
       registered-shorts list and is order-independent, which matters when
       a candidate must be disambiguated before its serving short has been
       walked. *)
    let has_serving_short c =
      let found = ref false in
      for s = max disasm_lo (c - 129) to c - 2 do
        if
          (not !found)
          && Hashtbl.mem bounds s
          && rbyte s = 0xeb
          &&
          match (decode_after s).Decode.insn with
          | Insn.Jmp_short rel -> rel >= 0 && s + 2 + rel = c
          | _ -> false
        then found := true
      done;
      !found
    in
    let try_short s a =
      if
        s >= disasm_lo && s >= otext.Frontend.base && Hashtbl.mem bounds s
        && rbyte s = 0xeb
      then
        let d = decode_after s in
        match d.Decode.insn with
        | Insn.Jmp_short rel when rel >= 0 && s + 2 + rel < text_hi -> (
            let jp = s + 2 + rel in
            match diversion_at jp with
            | Some _ ->
                shorts := (s, jp) :: !shorts;
                cover s 2;
                true
            | None -> false)
        | _ -> ignore a; false
      else false
    in
    List.iter
      (fun a ->
        if not (Hashtbl.mem covered a) then
          if not (in_disasm a) then
            fail a "changed byte outside the disassembled code region"
          else if
            rbyte a = 0xcc && Hashtbl.mem bounds a && Hashtbl.mem trap_tbl a
          then cover a 1
          else if try_short a a || try_short (a - 1) a then ()
          else begin
            (* Scan candidate starts. Overlapping decodes can alias — a pad
               prefix byte in front of a real [e9] yields a phantom jump
               with the same rel32 bytes — so prefer, in order: a start at
               an original instruction boundary (a directly patched or
               evicted site); a start some T3 short jump targets (a squat
               J_patch — checked against the rewritten bytes directly,
               because the serving short's own bytes may be punned inside
               another diversion and not walked yet); the lowest start. *)
            let cands = ref [] in
            for s = a downto max disasm_lo (a - max_scan_back) do
              match diversion_at s with
              | Some j when s + j.jlen > a -> cands := j :: !cands
              | _ -> ()
            done;
            let pick =
              match
                List.find_opt (fun j -> Hashtbl.mem bounds j.start) !cands
              with
              | Some j -> Some j
              | None -> (
                  match
                    List.find_opt (fun j -> has_serving_short j.start) !cands
                  with
                  | Some j -> Some j
                  | None -> (
                      match !cands with j :: _ -> Some j | [] -> None))
            in
            match pick with
            | Some j -> add_jmp j
            | None ->
                fail a
                  "unaccounted changed byte 0x%02x (original 0x%02x); no \
                   diversion explains it"
                  (rbyte a)
                  (Char.code (Bytes.get before (a - otext.Frontend.base)))
          end)
      changed;
    (* A short jump's target must itself be a registered diversion, even in
       the (theoretical) case where the punned jump's bytes all coincided
       with the original text and were never "changed". *)
    List.iter
      (fun (_, jp) ->
        if not (List.exists (fun j -> j.start = jp) !jmps) then
          match diversion_at jp with
          | Some j -> add_jmp j
          | None -> fail jp "short jump targets a non-diversion")
      !shorts;
    (* Bytes serve double duty under punning: a diversion (an evictee's
       jump, or a T3 short at a later-patched site) can lie entirely inside
       an earlier diversion's extent, so the changed-byte walk above never
       reaches it — it was already "covered". Expand to a fixpoint: any
       instruction boundary strictly inside a discovered jump's extent that
       itself decodes as a diversion with at least one rewritten byte is
       registered too. *)
    let changed_at a =
      Bytes.get before (a - otext.Frontend.base)
      <> Bytes.get after (a - otext.Frontend.base)
    in
    let any_changed lo len =
      let any = ref false in
      for i = lo to min (lo + len - 1) (text_hi - 1) do
        if changed_at i then any := true
      done;
      !any
    in
    let rec expand () =
      let added = ref false in
      List.iter
        (fun j ->
          for off = 1 to j.jlen - 1 do
            let b = j.start + off in
            if
              Hashtbl.mem bounds b
              && not (List.exists (fun j' -> j'.start = b) !jmps)
            then
              match diversion_at b with
              | Some j' when any_changed j'.start j'.jlen ->
                  add_jmp j';
                  added := true
              | _ -> ()
          done)
        !jmps;
      if !added then expand ()
    in
    expand ();
    (* Likewise a T3 short jump whose two bytes were punned over by another
       diversion: find it by scanning the rel8 range back from each
       non-boundary jump that still lacks a serving short. *)
    List.iter
      (fun j ->
        if
          (not (Hashtbl.mem bounds j.start))
          && not (List.exists (fun (_, jp) -> jp = j.start) !shorts)
        then
          for s = max disasm_lo (j.start - 129) to j.start - 2 do
            if
              Hashtbl.mem bounds s && rbyte s = 0xeb
              && (not (List.exists (fun (p, _) -> p = s) !shorts))
              &&
              match (decode_after s).Decode.insn with
              | Insn.Jmp_short rel -> s + 2 + rel = j.start
              | _ -> false
            then begin
              shorts := (s, j.start) :: !shorts;
              cover s 2
            end
          done)
      !jmps;
    let jmps = !jmps and shorts = !shorts in
    (* ---- trampoline verification --------------------------------- *)
    let tramp_window va =
      Bytes.init 16 (fun i ->
          match tramp_byte (va + i) with
          | Some b -> Char.chr b
          | None -> '\xcc')
    in
    let trampolines_checked = ref 0 in
    let verify_tramp ~site_addr t =
      let site_len, insn =
        match Hashtbl.find_opt bounds site_addr with
        | Some (len, insn) -> (len, insn)
        | None -> fail site_addr "served site is not an instruction boundary"
      in
      let ret = site_addr + site_len in
      let jcc_targets = ref [] in
      let call_targets = ref [] in
      let rec step va n =
        if n > max_tramp_insns then
          fail t "trampoline has no terminal transfer within %d instructions"
            max_tramp_insns;
        let d = Decode.decode (tramp_window va) 0 in
        for i = 0 to d.Decode.len - 1 do
          if tramp_byte (va + i) = None then
            fail va "trampoline decoding left the mapped region"
        done;
        match d.Decode.insn with
        | Insn.Jmp rel | Insn.Jmp_short rel -> `Jmp (va + d.Decode.len + rel)
        | Insn.Jmp_ind op -> `Jmp_ind (op, va, d.Decode.len)
        | Insn.Ret -> `Ret
        | Insn.Jcc (c, rel) | Insn.Jcc_short (c, rel) ->
            jcc_targets := (c, va + d.Decode.len + rel) :: !jcc_targets;
            step (va + d.Decode.len) (n + 1)
        | Insn.Call rel ->
            call_targets := (va + d.Decode.len + rel) :: !call_targets;
            step (va + d.Decode.len) (n + 1)
        | Insn.Int3 | Insn.Ud2 | Insn.Unknown _ ->
            fail va "invalid instruction inside trampoline"
        | _ -> step (va + d.Decode.len) (n + 1)
      in
      let terminal = step t 0 in
      incr trampolines_checked;
      match (insn, terminal) with
      | (Insn.Jmp rel | Insn.Jmp_short rel), `Jmp tgt ->
          if tgt <> ret + rel then
            fail t
              "terminal jump reaches 0x%x, not the displaced jump's target \
               0x%x"
              tgt (ret + rel)
      | (Insn.Jcc (c, rel) | Insn.Jcc_short (c, rel)), `Jmp tgt ->
          if tgt <> ret then
            fail t "terminal jump reaches 0x%x, not the continuation 0x%x" tgt
              ret;
          if
            not
              (List.exists
                 (fun (c', tg) -> c' = c && tg = ret + rel)
                 !jcc_targets)
          then
            fail t "no conditional branch to the displaced jcc's target 0x%x"
              (ret + rel)
      | Insn.Call rel, `Jmp tgt ->
          if tgt <> ret then
            fail t "terminal jump reaches 0x%x, not the continuation 0x%x" tgt
              ret;
          if not (List.mem (ret + rel) !call_targets) then
            fail t "no call to the displaced call's target 0x%x" (ret + rel)
      | Insn.Ret, `Ret -> ()
      | Insn.Jmp_ind (Insn.Mem m), `Jmp_ind (Insn.Mem m', va', dlen)
        when m.Insn.rip_rel && m'.Insn.rip_rel ->
          if va' + dlen + m'.Insn.disp <> ret + m.Insn.disp then
            fail t "retargeted rip-relative operand resolves elsewhere"
      | Insn.Jmp_ind op, `Jmp_ind (op', _, _) ->
          if not (Insn.equal (Insn.Jmp_ind op) (Insn.Jmp_ind op')) then
            fail t "indirect-jump operand changed in the trampoline"
      | _, `Jmp tgt ->
          if tgt <> ret then
            fail t "terminal jump reaches 0x%x, not the continuation 0x%x" tgt
              ret
      | _, _ ->
          fail t "terminal transfer has the wrong shape for %s"
            (Insn.to_string insn)
    in
    (* Serving-site resolution: a boundary jump serves itself; a
       non-boundary jump must be the target of a T3 short jump. *)
    List.iter
      (fun j ->
        let served =
          if Hashtbl.mem bounds j.start then j.start
          else
            match List.find_opt (fun (_, jp) -> jp = j.start) shorts with
            | Some (p, _) -> p
            | None ->
                fail j.start
                  "punned jump at a non-boundary address with no serving \
                   short jump"
        in
        verify_tramp ~site_addr:served j.target)
      jmps;
    (* Every trap-table entry must mark a real int3 at a boundary and have a
       verifiable trampoline. *)
    Hashtbl.iter
      (fun p t ->
        if not (in_disasm p) then fail p "trap entry outside the code region";
        if rbyte p <> 0xcc then fail p "trap entry does not mark an int3";
        verify_tramp ~site_addr:p t)
      trap_tbl;
    (* ---- per-byte classification --------------------------------- *)
    let orig_len a =
      match Hashtbl.find_opt bounds a with Some (l, _) -> l | None -> 0
    in
    let classify a =
      if rbyte a = 0xcc && Hashtbl.mem trap_tbl a then Trap
      else if List.exists (fun (s, _) -> a = s || a = s + 1) shorts then
        Short_jump
      else begin
        let covering =
          List.filter (fun j -> j.start <= a && a < j.start + j.jlen) jmps
        in
        match
          List.sort (fun j1 j2 -> compare j2.start j1.start) covering
        with
        | [] -> fail a "internal: changed byte lost its classification"
        | j :: _ ->
            if not (Hashtbl.mem bounds j.start) then T3_victim
            else if
              List.exists
                (fun j' ->
                  j'.start < j.start && j'.start + j'.jlen > j.start)
                jmps
            then T2_evictee
            else if
              List.exists
                (fun j' ->
                  j'.start > j.start
                  && j'.start < j.start + j.jlen
                  && not (Hashtbl.mem bounds j'.start))
                jmps
            then T3_victim
            else if a - j.start >= orig_len j.start then Pun_overhang
            else Patch_jump
      end
    in
    let classified = List.map (fun a -> (a, classify a)) changed in
    Ok
      { changed_bytes = List.length changed;
        diversions = List.length jmps;
        short_jumps = List.length shorts;
        traps = Hashtbl.length trap_tbl;
        trampolines_checked = !trampolines_checked;
        classified }
  with Fail e -> Error e

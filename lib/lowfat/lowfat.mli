(** Low-fat pointers (Duck & Yap, CC'16), as used by the paper's binary
    heap-write hardening application (§6.3).

    A low-fat allocator places objects in per-size-class regions so that an
    object's bounds can be recomputed from the {e bit pattern of the
    pointer itself}: [base p] rounds [p] down to its slot boundary within
    its region. The hardening instrumentation enforces the redzone
    property [p - base p >= redzone] on every heap write: each slot's first
    [redzone] bytes are never legally written, so a write that runs off the
    end of one object lands in the next slot's redzone and is caught.

    This module plays the role of the [LD_PRELOAD]ed [liblowfat.so]
    runtime: same allocation sites (the emulator's [malloc]/[free] host
    calls), same check, host-side implementation. Pointers outside the
    low-fat regions ("legacy" pointers — stack, globals) pass the check
    unconditionally, as in the original system. *)

(** Size of the per-object redzone, in bytes (the paper uses 16). *)
val redzone : int

(** Size classes are powers of two from [min_size] to [max_size]. *)
val min_size : int

val max_size : int

(** The low-fat regions span
    [[region_base, region_base + classes * region_size)]. *)
val region_base : int

val region_size : int

(** [is_lowfat p] — does [p] point into a low-fat region? *)
val is_lowfat : int -> bool

(** [base p] is the slot base of a low-fat pointer ([p] itself otherwise).
    A pure function of the pointer — no metadata lookup. *)
val base : int -> int

(** [slot_size p] is the size class of [p]'s region, if low-fat. *)
val slot_size : int -> int option

(** [check p] — the redzone property [p - base p >= redzone], true for
    legacy pointers. *)
val check : int -> bool

(** The allocator state (per emulated machine). *)
type t

val create : E9_vm.Space.t -> t

(** The request cannot be served: oversize, or the size class's region is
    exhausted. The allocator state is unchanged — harnesses catch this to
    skip-and-report rather than abort a whole campaign. *)
exception Error of string

(** [malloc t n] returns a pointer to [n] usable bytes placed at
    [slot + redzone] in the smallest fitting size class. Freed slots are
    recycled per class. Raises {!Error} (leaving the allocator
    untouched) when [n] exceeds the maximum size class or the class
    region is exhausted. *)
val malloc : t -> int -> int

val free : t -> int -> unit

(** [allocator t] packages this as the emulator allocator, with [check]
    wired to the redzone property — drop-in for
    [E9_emu.Machine.run ~make_allocator]. *)
val allocator : t -> E9_emu.Cpu.allocator

(** [make_allocator space] — convenience for [Machine.run]. *)
val make_allocator : E9_vm.Space.t -> E9_emu.Cpu.allocator

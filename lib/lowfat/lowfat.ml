module Space = E9_vm.Space

let redzone = 16
let min_size = 16
let max_size = 1 lsl 20
let region_base = 0x4000_0000_0000
let region_size = 1 lsl 32

(* Class [i] holds slots of [min_size lsl i] bytes in region [i]. *)
let classes =
  let rec count n acc = if n >= max_size then acc + 1 else count (n * 2) (acc + 1) in
  count min_size 0

let class_size i = min_size lsl i

let region_of p =
  let d = p - region_base in
  if d < 0 then None
  else
    let i = d / region_size in
    if i < classes then Some i else None

let is_lowfat p = region_of p <> None

let base p =
  match region_of p with
  | None -> p
  | Some i ->
      let start = region_base + (i * region_size) in
      start + ((p - start) / class_size i * class_size i)

let slot_size p = Option.map class_size (region_of p)
let check p = (not (is_lowfat p)) || p - base p >= redzone

type t = {
  space : Space.t;
  next : int array;  (* per-class bump offset, in slots *)
  free_lists : int list array;  (* per-class recycled slot bases *)
}

let create space = { space; next = Array.make classes 0; free_lists = Array.make classes [] }

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let class_for n =
  let need = n + redzone in
  let rec go i = if class_size i >= need then i else go (i + 1) in
  if need > max_size then
    error "Lowfat.malloc: %d exceeds max size %d" n max_size
  else go 0

let malloc t n =
  let i = class_for (max n 1) in
  let slot =
    match t.free_lists.(i) with
    | s :: rest ->
        t.free_lists.(i) <- rest;
        s
    | [] ->
        (* Refuse {e before} bumping the cursor: an exhausted region must
           leave the allocator unchanged so a caller that catches the
           error can keep serving smaller classes. *)
        if (t.next.(i) + 1) * class_size i > region_size then
          error "Lowfat.malloc: size-class %d region exhausted (%d slots)"
            (class_size i) t.next.(i);
        let s = region_base + (i * region_size) + (t.next.(i) * class_size i) in
        t.next.(i) <- t.next.(i) + 1;
        Space.map_zero t.space ~vaddr:s ~len:(class_size i)
          ~prot:Elf_file.prot_rw;
        s
  in
  slot + redzone

let free t p =
  match region_of p with
  | None -> () (* legacy pointer: not ours *)
  | Some i -> t.free_lists.(i) <- (base p) :: t.free_lists.(i)

let allocator t =
  { E9_emu.Cpu.name = "lowfat";
    malloc = malloc t;
    free = free t;
    check }

let make_allocator space = allocator (create space)

(** Deterministic fault injection (DESIGN.md §11).

    A [Fault.t] is a capability record threaded through the rewrite
    pipeline. Each subsystem asks it — at well-defined query points —
    whether the next operation should be made to fail. With no rules
    installed ([none]) every query is a constant-time no-op, so the
    production path pays nothing.

    Faults are {e deterministic}: a site either counts occurrences
    (the Nth allocator query fails, regardless of wall clock or domain
    scheduling) or is keyed by a stable index (shard [k] fails). To keep
    the occurrence counters deterministic under domain parallelism the
    record is forked per shard and merged back in canonical shard order,
    exactly like [Obs.fork] / [Obs.merge_into]. *)

(** Where a fault can be injected. *)
type site =
  | Alloc      (** jump-tactic [Layout] queries (alloc/probe/alloc_at) *)
  | B0_alloc   (** the B0 fallback's own trampoline allocation *)
  | Decode     (** disassembly: truncate the site list at a text offset *)
  | Shard      (** raise inside a shard task mid-[Pool.map] *)
  | Trace      (** trace-sink (ndjson) write errors *)
  | Write      (** ELF serialization short-writes *)
  | Rpc_accept (** daemon: drop a just-accepted connection (DESIGN.md §13) *)
  | Rpc_read   (** daemon: a session read fails mid-stream *)
  | Rpc_decode (** daemon: request decoding refuses the message *)
  | Rpc_emit   (** daemon: the emit-time rewrite/serve path fails *)

val sites : site array
val site_name : site -> string
val site_of_name : string -> site option
val site_index : site -> int

(** When a rule fires, in terms of the site's occurrence count [n]
    (0-based: the first query is occurrence 0). *)
type trigger =
  | At of int     (** exactly occurrence [n] (for [Decode]: cut offset) *)
  | From of int   (** every occurrence >= [n] *)
  | Every of int  (** occurrences where [n mod k = 0] (k > 0) *)

type rule = { site : site; trigger : trigger }

exception Parse_error of string

(** Raised by pipeline code simulating a crash (e.g. a shard-domain
    exception); callers convert it to their own typed error. *)
exception Injected of string

type t

(** The empty capability: no rules, every query is a no-op. Shared
    freely — all mutators early-return when there are no rules. *)
val none : t

val create : rule list -> t
val rules : t -> rule list
val is_none : t -> bool

(** [fork t] is a fresh record with the same (immutable) rules and
    zeroed occurrence counters — one per shard, so counting is a
    function of the shard's own query sequence, never of domain
    interleaving. *)
val fork : t -> t

(** Add [src]'s occurrence and fired counters into [dst]. *)
val merge_into : dst:t -> t -> unit

(** [fires t site] counts one occurrence of [site] and reports whether
    any rule fires on it. *)
val fires : t -> site -> bool

(** [fires_at t site ~key] is trigger matching against a caller-supplied
    stable index (no occurrence counting): [At k] fires iff [key = k],
    [From k] iff [key >= k], [Every k] iff [key mod k = 0]. *)
val fires_at : t -> site -> key:int -> bool

(** Smallest trigger threshold over [Decode] rules, interpreted as a
    text offset at which to truncate the decoded-site list. *)
val decode_cut : t -> int option

(** Record that a fault at [site] was acted upon without going through
    [fires] (used with [decode_cut]). *)
val record_fire : t -> site -> unit

(** How many times faults at [site] fired (post-[merge_into] this is the
    whole-pipeline total). *)
val fired : t -> site -> int

val fired_total : t -> int

(** Spec grammar (also in DESIGN.md §11): comma-separated rules, each
    [site@N] (fire at occurrence N), [site@N+] (from N on) or [site%N]
    (every Nth); N is decimal or 0x-hex. Sites: alloc, b0alloc, decode,
    shard, trace, write, rpcaccept, rpcread, rpcdecode, rpcemit.
    Example: ["alloc@3,write@0,decode@0x400"]. Raises [Parse_error] on
    malformed input. *)
val parse : string -> rule list

val to_string : rule list -> string

type site =
  | Alloc
  | B0_alloc
  | Decode
  | Shard
  | Trace
  | Write
  | Rpc_accept
  | Rpc_read
  | Rpc_decode
  | Rpc_emit

let sites =
  [| Alloc; B0_alloc; Decode; Shard; Trace; Write; Rpc_accept; Rpc_read;
     Rpc_decode; Rpc_emit |]

let nsites = Array.length sites

(* Append-only: existing indices are pinned by golden tests and by any
   persisted fired-count report. New sites go at the end. *)
let site_index = function
  | Alloc -> 0
  | B0_alloc -> 1
  | Decode -> 2
  | Shard -> 3
  | Trace -> 4
  | Write -> 5
  | Rpc_accept -> 6
  | Rpc_read -> 7
  | Rpc_decode -> 8
  | Rpc_emit -> 9

let site_name = function
  | Alloc -> "alloc"
  | B0_alloc -> "b0alloc"
  | Decode -> "decode"
  | Shard -> "shard"
  | Trace -> "trace"
  | Write -> "write"
  | Rpc_accept -> "rpcaccept"
  | Rpc_read -> "rpcread"
  | Rpc_decode -> "rpcdecode"
  | Rpc_emit -> "rpcemit"

let site_of_name s =
  let rec go i =
    if i >= nsites then None
    else if site_name sites.(i) = s then Some sites.(i)
    else go (i + 1)
  in
  go 0

type trigger = At of int | From of int | Every of int
type rule = { site : site; trigger : trigger }

exception Parse_error of string
exception Injected of string

type t = { rules : rule list; counts : int array; fired : int array }

let none = { rules = []; counts = [||]; fired = [||] }

let create rules =
  if rules = [] then none
  else { rules; counts = Array.make nsites 0; fired = Array.make nsites 0 }

let rules t = t.rules
let is_none t = t.rules = []

let fork t = if t.rules = [] then none else create t.rules

let merge_into ~dst src =
  if dst.rules <> [] && src.rules <> [] then begin
    for i = 0 to nsites - 1 do
      dst.counts.(i) <- dst.counts.(i) + src.counts.(i);
      dst.fired.(i) <- dst.fired.(i) + src.fired.(i)
    done
  end

let matches trigger n =
  match trigger with
  | At k -> n = k
  | From k -> n >= k
  | Every k -> k > 0 && n mod k = 0

let fires t site =
  t.rules <> []
  && begin
       let i = site_index site in
       let n = t.counts.(i) in
       t.counts.(i) <- n + 1;
       let hit =
         List.exists (fun r -> r.site = site && matches r.trigger n) t.rules
       in
       if hit then t.fired.(i) <- t.fired.(i) + 1;
       hit
     end

let fires_at t site ~key =
  t.rules <> []
  && begin
       let hit =
         List.exists (fun r -> r.site = site && matches r.trigger key) t.rules
       in
       if hit then t.fired.(site_index site) <- t.fired.(site_index site) + 1;
       hit
     end

let decode_cut t =
  List.fold_left
    (fun acc r ->
      if r.site <> Decode then acc
      else
        let v =
          match r.trigger with At k | From k | Every k -> k
        in
        match acc with None -> Some v | Some a -> Some (min a v))
    None t.rules

let record_fire t site =
  if t.rules <> [] then begin
    let i = site_index site in
    t.fired.(i) <- t.fired.(i) + 1
  end

let fired t site = if t.rules = [] then 0 else t.fired.(site_index site)
let fired_total t = if t.rules = [] then 0 else Array.fold_left ( + ) 0 t.fired

(* ------------------------------------------------------------------ *)
(* Spec grammar: site@N | site@N+ | site%N, comma-separated.           *)
(* ------------------------------------------------------------------ *)

let err fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let parse_int item s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> n
  | Some _ -> err "fault spec %S: negative count" item
  | None -> err "fault spec %S: bad count %S" item s

let parse_item item =
  let split c =
    match String.index_opt item c with
    | Some i ->
        Some
          ( String.sub item 0 i,
            String.sub item (i + 1) (String.length item - i - 1) )
    | None -> None
  in
  let site name =
    match site_of_name (String.lowercase_ascii name) with
    | Some s -> s
    | None -> err "fault spec %S: unknown site %S" item name
  in
  match split '@' with
  | Some (name, n) ->
      let trigger =
        if String.length n > 0 && n.[String.length n - 1] = '+' then
          From (parse_int item (String.sub n 0 (String.length n - 1)))
        else At (parse_int item n)
      in
      { site = site name; trigger }
  | None -> (
      match split '%' with
      | Some (name, n) ->
          let k = parse_int item n in
          if k = 0 then err "fault spec %S: every-0 never fires" item;
          { site = site name; trigger = Every k }
      | None -> err "fault spec %S: expected site@N, site@N+ or site%%N" item)

let parse s =
  let s = String.trim s in
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun item ->
           let item = String.trim item in
           if item = "" then err "fault spec: empty rule in %S" s;
           parse_item item)

let to_string rules =
  String.concat ","
    (List.map
       (fun r ->
         match r.trigger with
         | At n -> Printf.sprintf "%s@%d" (site_name r.site) n
         | From n -> Printf.sprintf "%s@%d+" (site_name r.site) n
         | Every n -> Printf.sprintf "%s%%%d" (site_name r.site) n)
       rules)

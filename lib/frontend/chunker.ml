type params = { min_size : int; avg_bits : int; max_size : int }

let default = { min_size = 1024; avg_bits = 12; max_size = 16384 }

let pp_params ppf p =
  Format.fprintf ppf "%d/%d/%d" p.min_size (1 lsl p.avg_bits) p.max_size

(* Cut sizes are kept multiples of [align] so chunk starts stay
   paragraph-aligned: a superblock-friendly grid, and boundaries do not
   jitter under sub-paragraph edits. Normalization below guarantees the
   snapped size never drops under [min_size]. *)
let align = 16

let normalize p =
  let round_up v = (v + align - 1) land lnot (align - 1) in
  let min_size = max (round_up p.min_size) (4 * E9_bits.Fnv.Rolling.window) in
  let max_size = max (round_up p.max_size) (2 * min_size) in
  let avg_bits = max 6 p.avg_bits in
  { min_size; avg_bits; max_size }

let boundaries p b ~pos ~len =
  let p = normalize p in
  let mask = (1 lsl p.avg_bits) - 1 in
  let roll = E9_bits.Fnv.Rolling.create () in
  let out = ref [] in
  let start = ref 0 in
  (* Scan each chunk from its own start with a fresh window, so a
     chunk's far boundary depends only on its own bytes: after an edit,
     the first unedited chunk start re-derives all later boundaries
     identically. *)
  while !start < len do
    E9_bits.Fnv.Rolling.reset roll;
    let cut = ref (min p.max_size (len - !start)) in
    (try
       let limit = !cut in
       for i = 0 to limit - 1 do
         E9_bits.Fnv.Rolling.feed roll (Char.code (Bytes.unsafe_get b (pos + !start + i)));
         let size = i + 1 in
         if size >= p.min_size && E9_bits.Fnv.Rolling.digest roll land mask = mask
         then begin
           (* Snap down to the alignment grid; min_size is a multiple
              of [align], so the snapped size stays >= min_size. *)
           cut := size - (size mod align);
           raise Exit
         end
       done
     with Exit -> ());
    out := (!start, !cut) :: !out;
    start := !start + !cut
  done;
  List.rev !out

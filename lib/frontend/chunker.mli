(** Content-defined chunking of the text section for the incremental
    plan cache (DESIGN.md §14).

    Boundaries are chosen by a rolling hash over the raw text bytes, so
    an edit moves only the boundaries of the chunk it lands in: the
    rolling window re-synchronizes and every later chunk keeps its
    identity (and therefore its cached plan). Geometry is a pure
    function of the bytes and the parameters — never of jobs, faults,
    or allocation state — which preserves the rewriter's
    jobs-invariance contract from DESIGN.md §10. *)

type params = {
  min_size : int;  (** No boundary before this many bytes. *)
  avg_bits : int;  (** Expected chunk size is [2^avg_bits] bytes. *)
  max_size : int;  (** Forced boundary at this many bytes. *)
}

val default : params
(** 1 KiB / 4 KiB / 16 KiB — sized so that with [Tactics.max_reach]
    seams, well under 20% of sites are boundary sites even on dense
    corpora, while a 1% edit still invalidates only a few chunks. *)

val pp_params : Format.formatter -> params -> unit

(** [boundaries params b ~pos ~len] splits [b.[pos .. pos+len-1]] into
    chunks, returned as a list of [(off, size)] pairs with offsets
    relative to [pos], in ascending order, covering the range exactly
    with no overlap. Every chunk except possibly the last has
    [min_size <= size <= max_size]; the last only respects [max_size].
    Cut positions are additionally snapped down to a 16-byte alignment
    (superblock-friendly: the frontend's sweep stitches across cuts
    regardless, this just keeps boundaries stable under sub-paragraph
    edits). Empty list iff [len = 0]. *)
val boundaries : params -> bytes -> pos:int -> len:int -> (int * int) list

(** The disassembler frontend.

    E9Patch itself does not disassemble: it consumes instruction locations
    and sizes produced by a frontend and trusts them (paper §2.2). This
    module is the paper's "basic wrapper frontend that applies linear
    disassembly to the (.text) section of the input binary". Any other
    frontend (superset, probabilistic, partial) could be substituted: the
    rewriter only consumes {!site} values. *)

type site = {
  addr : int;  (** virtual address of the instruction *)
  len : int;  (** size in bytes *)
  insn : E9_x86.Insn.t;  (** decoded form (classification only) *)
}

(** Location and extent of the text being rewritten. *)
type text = {
  base : int;  (** virtual address of the first byte *)
  offset : int;  (** file offset of the first byte *)
  size : int;
}

(** The input cannot be disassembled as requested (no text section, or a
    sweep start outside it). Raised instead of patching anything; the CLI
    renders it as a clean error. *)
exception Error of string

(** [find_text elf] locates the code to rewrite: the [.text] section if
    present, otherwise the first executable [PT_LOAD] segment. *)
val find_text : Elf_file.t -> text option

(** [disassemble ?from ?jobs ?chunk elf] linearly disassembles the text,
    returning every instruction in address order. [from] starts the sweep
    at a known code address — the paper's §6.2 workaround for binaries
    (Chrome) whose text section mixes data and code: bytes before [from]
    are not disassembled and therefore never patched. With [jobs > 1] the
    sweep is chunked across domains ([chunk] bytes per chunk, default
    64 KiB) and re-synchronized serially at chunk seams: chunk boundaries
    are fixed and decoding is a pure function of the byte position, so
    the result is identical to the serial sweep for every [jobs]
    value.

    [fault] (default {!E9_fault.Fault.none}) may carry [Decode] rules;
    the smallest rule value truncates the site list at that text offset —
    a strict prefix of the true decode, i.e. partial disassembly, which
    the rewriter turns into partial instrumentation (§2.2). Raises
    {!Error} if the text cannot be found or [from] lies outside it. *)
val disassemble :
  ?from:int -> ?jobs:int -> ?chunk:int -> ?fault:E9_fault.Fault.t ->
  Elf_file.t -> text * site list

(** [disassemble_planned ~bounds ~probe elf] is the plan-aware chunked
    sweep of the incremental plan cache (DESIGN.md §14). [bounds] lists
    the content-defined chunks as text-relative [(offset, size)] pairs,
    ascending, covering the text exactly ({!Chunker.boundaries}). The
    sweep walks the chunks carrying the serial stream position; for each
    chunk it first asks [probe ~index ~entry] — answering
    [Some (sites, exit)] adopts the recorded decode wholesale (the
    caller must only answer when the recording was made at the same
    entry position over identical chunk bytes; decode is a pure function
    of [(bytes, position)], so the adoption is then exact) — and
    otherwise decodes live from the entry to the chunk's end. Returns
    [(text, chunk_sites, entries, exits, replayed)]: per-chunk site
    lists (each site starting inside its chunk, ascending), per-chunk
    entry/exit sweep positions (text-relative; entry may lie past the
    chunk start after a seam overrun, or past its end for chunks the
    [from] start skips), and which chunks were adopted from the probe.
    Concatenated in chunk order, the sites equal {!disassemble}'s.
    No fault parameter: the rewriter disables plan capture/replay
    entirely under fault injection. *)
val disassemble_planned :
  ?from:int ->
  bounds:(int * int) list ->
  probe:(index:int -> entry:int -> (site list * int) option) ->
  Elf_file.t ->
  text * site list array * int array * int array * bool array

(** [disassemble_excluding ~holes elf] is the §6.2 workaround generalized
    past a leading pool: a serial linear sweep that never decodes inside
    the [(addr, len)] extents of [holes] (mid-function data islands,
    constant pools known from ground truth), re-synchronizing at each
    hole's end. A decode that overruns into a hole is also corrected —
    the next sweep position inside the hole resumes at its end — so the
    sweep is self-correcting at both edges. Sites inside holes are never
    produced, hence never patched. *)
val disassemble_excluding :
  holes:(int * int) list -> ?fault:E9_fault.Fault.t -> Elf_file.t ->
  text * site list

(** Patch-location selectors for the paper's two applications. *)

(** A1: all [jmp]/[jcc] instructions (§6.1). *)
val select_jumps : site -> bool

(** A2: all instructions that may write through a heap pointer (§6.3). *)
val select_heap_writes : site -> bool

(** [disassemble_recursive elf] is an alternative frontend: recursive
    descent from the entry point, following direct branches and calls and
    stopping at indirect control flow. It discovers only a {e subset} of
    the instructions (indirect targets stay invisible) — which is fine for
    E9Patch: its patching is local, so partial disassembly information
    yields partial instrumentation, never incorrectness (§2.2). Returned
    sites are in address order. *)
val disassemble_recursive : Elf_file.t -> text * site list

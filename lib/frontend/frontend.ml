module Buf = E9_bits.Buf
module Decode = E9_x86.Decode
module Classify = E9_x86.Classify
module Fault = E9_fault.Fault

type site = { addr : int; len : int; insn : E9_x86.Insn.t }
type text = { base : int; offset : int; size : int }

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let find_text (elf : Elf_file.t) =
  match Elf_file.find_section elf ".text" with
  | Some s -> Some { base = s.addr; offset = s.offset; size = s.size }
  | None ->
      List.find_opt
        (fun (s : Elf_file.segment) -> s.ptype = Elf_file.Load && s.prot.x)
        elf.segments
      |> Option.map (fun (s : Elf_file.segment) ->
             { base = s.vaddr; offset = s.offset; size = s.filesz })

(* Chunked parallel linear sweep. Chunk boundaries are fixed (independent
   of the worker count): each chunk is decoded linearly from its own
   start, overrunning its end by at most one instruction; the serial
   stitch below reconciles the overruns. Decoding is a pure function of
   [(bytes, position)], so whenever the stitch reaches a position a chunk
   also decoded from, the remainders coincide — the result is exactly the
   single serial sweep, for every [jobs] value. *)
let default_chunk = 1 lsl 16

let linear_chunked ~jobs ~chunk bytes ~pos ~len =
  let hi = pos + len in
  let n = (len + chunk - 1) / chunk in
  let bounds =
    List.init n (fun i -> (pos + (i * chunk), min hi (pos + ((i + 1) * chunk))))
  in
  let decoded =
    E9_bits.Pool.map ~domains:jobs
      (fun (clo, chi) ->
        let rec go p acc =
          if p >= chi then (List.rev acc, p)
          else
            let d = Decode.decode bytes p in
            go (p + d.Decode.len) ((p, d) :: acc)
        in
        go clo [])
      bounds
  in
  (* Stitch: walk the chunks carrying the serial stream position [p].
     Entering a chunk at its start adopts its decode wholesale; entering
     mid-chunk (the previous chunk overran) re-decodes one instruction at
     a time until [p] lands on a position the chunk decoded, then adopts
     the rest. [acc] holds emitted (position, decoded) pairs in reverse. *)
  let rec walk p chunks acc =
    match chunks with
    | [] -> List.rev acc
    | ((clo, chi), (sites, cend)) :: rest ->
        if p >= chi then walk p rest acc
        else if p = clo then walk cend rest (List.rev_append sites acc)
        else begin
          let rec sync p sites acc =
            match sites with
            | (off, _) :: tail when off < p -> sync p tail acc
            | (off, _) :: _ when off = p -> (cend, List.rev_append sites acc)
            | _ ->
                if p >= chi then (p, acc)
                else
                  let d = Decode.decode bytes p in
                  sync (p + d.Decode.len) sites ((p, d) :: acc)
          in
          let p, acc = sync p sites acc in
          walk p rest acc
        end
  in
  walk pos (List.combine bounds decoded) []

(* An injected decode failure is modeled as a linear sweep that stops
   early: the site list is truncated at the first instruction whose text
   offset reaches the cut. A strict prefix of the true decode is exactly
   the partial-disassembly contract the rewriter already honors (§2.2):
   fewer instrumented sites, never incorrect ones — and the same prefix
   is produced by the serial and chunked sweeps, preserving
   jobs-invariance under faults. *)
let apply_decode_cut fault decoded =
  match Fault.decode_cut fault with
  | None -> decoded
  | Some cut ->
      let kept = List.filter (fun (off, _) -> off < cut) decoded in
      if List.compare_lengths kept decoded < 0 then
        Fault.record_fire fault Fault.Decode;
      kept

let disassemble ?from ?(jobs = 1) ?(chunk = default_chunk)
    ?(fault = Fault.none) elf =
  match find_text elf with
  | None -> error "Frontend: no text section or executable segment"
  | Some text ->
      (* [from] is the "ChromeMain workaround" (paper §6.2): when the text
         section mixes data and code, start the linear sweep at a known
         code address and leave the prefix untouched. *)
      let start =
        match from with
        | None -> 0
        | Some addr ->
            if addr < text.base || addr >= text.base + text.size then
              error "Frontend: disassembly start 0x%x outside the text \
                     [0x%x, 0x%x)"
                addr text.base (text.base + text.size)
            else addr - text.base
      in
      let bytes = Buf.sub elf.Elf_file.data ~pos:text.offset ~len:text.size in
      let len = text.size - start in
      let decoded =
        if jobs <= 1 || len <= chunk then Decode.linear bytes ~pos:start ~len
        else linear_chunked ~jobs ~chunk bytes ~pos:start ~len
      in
      let decoded = apply_decode_cut fault decoded in
      let sites =
        List.map
          (fun (off, d) ->
            { addr = text.base + off; len = d.Decode.len; insn = d.Decode.insn })
          decoded
      in
      (text, sites)

(* Plan-aware chunked sweep (DESIGN.md §14): walk the content-defined
   chunks in ascending order carrying the serial stream position [p]; a
   chunk whose cached plan matches the arriving position adopts the
   recorded sites and exit wholesale (skipping its decode entirely),
   any other chunk decodes live from [p]. Decoding is a pure function of
   [(bytes, position)], so a replayed chunk is byte-for-byte the decode
   a cold sweep would have produced — the probe only answers when its
   recorded entry equals the live [p]. *)
let disassemble_planned ?from ~bounds ~probe elf =
  match find_text elf with
  | None -> error "Frontend: no text section or executable segment"
  | Some text ->
      let start =
        match from with
        | None -> 0
        | Some addr ->
            if addr < text.base || addr >= text.base + text.size then
              error "Frontend: disassembly start 0x%x outside the text \
                     [0x%x, 0x%x)"
                addr text.base (text.base + text.size)
            else addr - text.base
      in
      let bytes = Buf.sub elf.Elf_file.data ~pos:text.offset ~len:text.size in
      let n = List.length bounds in
      let chunk_sites = Array.make n [] in
      let entries = Array.make n 0 in
      let exits = Array.make n 0 in
      let replayed = Array.make n false in
      let p = ref start in
      List.iteri
        (fun i (clo, csz) ->
          let chi = clo + csz in
          entries.(i) <- !p;
          (if !p < chi then
             match probe ~index:i ~entry:!p with
             | Some (sites, ex) ->
                 chunk_sites.(i) <- sites;
                 replayed.(i) <- true;
                 p := ex
             | None ->
                 let rec go q acc =
                   if q >= chi then (List.rev acc, q)
                   else
                     let d = Decode.decode bytes q in
                     go (q + d.Decode.len)
                       ({ addr = text.base + q;
                          len = d.Decode.len;
                          insn = d.Decode.insn }
                       :: acc)
                 in
                 let sites, q = go !p [] in
                 chunk_sites.(i) <- sites;
                 p := q);
          exits.(i) <- !p)
        bounds;
      (text, chunk_sites, entries, exits, replayed)

(* The §6.2 workaround generalized past a leading pool: a linear sweep
   that hops over known interior data extents, re-synchronizing at each
   hole's end. Holes come from ground truth (symbols, metadata sections);
   any sweep position inside a hole — including one reached by a decode
   that overran into it — resumes at the hole's end, so the sweep is
   self-correcting at both edges. *)
let disassemble_excluding ~holes ?(fault = Fault.none) elf =
  match find_text elf with
  | None -> error "Frontend: no text section or executable segment"
  | Some text ->
      let bytes = Buf.sub elf.Elf_file.data ~pos:text.offset ~len:text.size in
      let hole_at p =
        let addr = text.base + p in
        List.find_opt (fun (a, l) -> addr >= a && addr < a + l) holes
      in
      let rec go p acc =
        if p >= text.size then List.rev acc
        else
          match hole_at p with
          | Some (a, l) -> go (a + l - text.base) acc
          | None ->
              let d = Decode.decode bytes p in
              go (p + d.Decode.len) ((p, d) :: acc)
      in
      let decoded = apply_decode_cut fault (go 0 []) in
      let sites =
        List.map
          (fun (off, d) ->
            { addr = text.base + off; len = d.Decode.len; insn = d.Decode.insn })
          decoded
      in
      (text, sites)

let select_jumps site = Classify.is_jump site.insn
let select_heap_writes site = Classify.is_heap_write site.insn

let disassemble_recursive elf =
  match find_text elf with
  | None -> error "Frontend: no text section or executable segment"
  | Some text ->
      let bytes = Buf.sub elf.Elf_file.data ~pos:text.offset ~len:text.size in
      let seen = Hashtbl.create 4096 in
      let work = Queue.create () in
      let push addr =
        if
          addr >= text.base
          && addr < text.base + text.size
          && not (Hashtbl.mem seen addr)
        then begin
          Hashtbl.replace seen addr ();
          Queue.push addr work
        end
      in
      push elf.Elf_file.entry;
      let sites = ref [] in
      while not (Queue.is_empty work) do
        let addr = Queue.pop work in
        let d = Decode.decode bytes (addr - text.base) in
        let site = { addr; len = d.Decode.len; insn = d.Decode.insn } in
        sites := site :: !sites;
        let next = addr + d.Decode.len in
        (match Classify.branch_rel d.Decode.insn with
        | Some rel -> push (next + rel)
        | None -> ());
        (* Fall through unless control flow never returns here. An indirect
           jump or return ends the path; an indirect call falls through. *)
        match d.Decode.insn with
        | E9_x86.Insn.Jmp _ | E9_x86.Insn.Jmp_short _ | E9_x86.Insn.Jmp_ind _
        | E9_x86.Insn.Ret | E9_x86.Insn.Ud2 | E9_x86.Insn.Unknown _ ->
            ()
        | _ -> push next
      done;
      let sites =
        List.sort (fun a b -> compare a.addr b.addr) !sites
      in
      (text, sites)

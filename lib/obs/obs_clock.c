/* Monotonic nanosecond clock for span timing.
 *
 * Unix.gettimeofday is wall-clock time at microsecond resolution: spans
 * shorter than ~1us aggregate to 0 and a stepped clock can even go
 * backwards mid-span. CLOCK_MONOTONIC at nanosecond resolution fixes
 * both; the OCaml side aggregates integer nanoseconds and converts to
 * seconds only at the reporting edge. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value e9_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}

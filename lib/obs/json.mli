(** Minimal JSON: a value type, a deterministic printer and a strict
    parser. Hand-rolled so neither the bench harness nor the trace
    exporter pulls in an external dependency.

    The printer is the one the bench pipeline has always used for
    [BENCH_throughput.json]: floats as [%.6g], non-finite floats as
    [null], control characters escaped as [\uXXXX]. The parser accepts
    exactly the values the printer emits (plus standard JSON whitespace),
    which is what the ndjson schema validator needs for round-trips. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** [to_file path j] writes [j] followed by a newline. *)
val to_file : string -> t -> unit

(** [of_string s] parses one JSON value; trailing non-whitespace is an
    error. Numbers without [.], [e] or [E] parse as [Int]. *)
val of_string : string -> (t, string) result

(** [member key j] is the value bound to [key] when [j] is an object. *)
val member : string -> t -> t option

type tactic = B0 | B1 | B2 | T1 | T2 | T3

type reject =
  | Too_short
  | Locked
  | Pun_miss
  | Range
  | Alloc_conflict
  | No_successor
  | Budget
  | Injected
  | Dead_window
  | Stripe_blocked

type outcome =
  | Accepted of { trampoline : int; pad : int; evictee_distance : int }
  | Rejected of reject

(* Monotonic nanoseconds (C stub): immune to clock steps, and fine
   enough that sub-microsecond spans aggregate to their true total
   instead of rounding to 0 at every call. *)
external monotonic_ns : unit -> int64 = "e9_obs_monotonic_ns"

type event =
  | Attempt of { addr : int; tactic : tactic; outcome : outcome }
  | Site of { addr : int; tactic : tactic option }
  | Span of { name : string; dur_ns : int }
  | Gauge of { name : string; value : int }
  | Counter of { name : string; value : int }
  | Fault of { site : string; fires : int }

let tactics = [| B0; B1; B2; T1; T2; T3 |]
let tactic_index = function B0 -> 0 | B1 -> 1 | B2 -> 2 | T1 -> 3 | T2 -> 4 | T3 -> 5

let tactic_name = function
  | B0 -> "B0"
  | B1 -> "B1"
  | B2 -> "B2"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"

let tactic_of_name = function
  | "B0" -> Some B0
  | "B1" -> Some B1
  | "B2" -> Some B2
  | "T1" -> Some T1
  | "T2" -> Some T2
  | "T3" -> Some T3
  | _ -> None

let rejects =
  [| Too_short; Locked; Pun_miss; Range; Alloc_conflict; No_successor; Budget;
     Injected; Dead_window; Stripe_blocked |]

let reject_index = function
  | Too_short -> 0
  | Locked -> 1
  | Pun_miss -> 2
  | Range -> 3
  | Alloc_conflict -> 4
  | No_successor -> 5
  | Budget -> 6
  | Injected -> 7
  | Dead_window -> 8
  | Stripe_blocked -> 9

let reject_name = function
  | Too_short -> "too_short"
  | Locked -> "locked"
  | Pun_miss -> "pun_miss"
  | Range -> "range"
  | Alloc_conflict -> "alloc_conflict"
  | No_successor -> "no_successor"
  | Budget -> "budget"
  | Injected -> "injected"
  | Dead_window -> "dead_window"
  | Stripe_blocked -> "stripe_blocked"

let reject_of_name = function
  | "too_short" -> Some Too_short
  | "locked" -> Some Locked
  | "pun_miss" -> Some Pun_miss
  | "range" -> Some Range
  | "alloc_conflict" -> Some Alloc_conflict
  | "no_successor" -> Some No_successor
  | "budget" -> Some Budget
  | "injected" -> Some Injected
  | "dead_window" -> Some Dead_window
  | "stripe_blocked" -> Some Stripe_blocked
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

module Agg = struct
  type agg = {
    accepted : int array;
    rejected : int array;
    mutable sites : int;
    mutable sites_patched : int;
    mutable sites_failed : int;
    mutable pad_bytes : int;
    spans : (string, int * int) Hashtbl.t;  (* calls, total ns *)
    gauges : (string, int) Hashtbl.t;
    counters : (string, int) Hashtbl.t;
  }

  let create () =
    { accepted = Array.make (Array.length tactics) 0;
      rejected = Array.make (Array.length rejects) 0;
      sites = 0;
      sites_patched = 0;
      sites_failed = 0;
      pad_bytes = 0;
      spans = Hashtbl.create 8;
      gauges = Hashtbl.create 8;
      counters = Hashtbl.create 8 }

  let add_event a = function
    | Attempt { tactic; outcome = Accepted { pad; _ }; _ } ->
        let i = tactic_index tactic in
        a.accepted.(i) <- a.accepted.(i) + 1;
        a.pad_bytes <- a.pad_bytes + pad
    | Attempt { outcome = Rejected r; _ } ->
        let i = reject_index r in
        a.rejected.(i) <- a.rejected.(i) + 1
    | Site { tactic; _ } ->
        a.sites <- a.sites + 1;
        if tactic = None then a.sites_failed <- a.sites_failed + 1
        else a.sites_patched <- a.sites_patched + 1
    | Span { name; dur_ns } ->
        let calls, total =
          Option.value ~default:(0, 0) (Hashtbl.find_opt a.spans name)
        in
        Hashtbl.replace a.spans name (calls + 1, total + dur_ns)
    | Gauge { name; value } -> Hashtbl.replace a.gauges name value
    | Counter { name; value } ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt a.counters name) in
        Hashtbl.replace a.counters name (prev + value)
    | Fault { site; fires } ->
        let name = "fault." ^ site in
        let prev = Option.value ~default:0 (Hashtbl.find_opt a.counters name) in
        Hashtbl.replace a.counters name (prev + fires)

  let of_events evs =
    let a = create () in
    List.iter (add_event a) evs;
    a

  let merge_into ~dst src =
    Array.iteri (fun i n -> dst.accepted.(i) <- dst.accepted.(i) + n) src.accepted;
    Array.iteri (fun i n -> dst.rejected.(i) <- dst.rejected.(i) + n) src.rejected;
    dst.sites <- dst.sites + src.sites;
    dst.sites_patched <- dst.sites_patched + src.sites_patched;
    dst.sites_failed <- dst.sites_failed + src.sites_failed;
    dst.pad_bytes <- dst.pad_bytes + src.pad_bytes;
    Hashtbl.iter
      (fun name (calls, total) ->
        let c0, t0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt dst.spans name)
        in
        Hashtbl.replace dst.spans name (c0 + calls, t0 + total))
      src.spans;
    Hashtbl.iter (fun name v -> Hashtbl.replace dst.gauges name v) src.gauges;
    Hashtbl.iter
      (fun name v ->
        let prev = Option.value ~default:0 (Hashtbl.find_opt dst.counters name) in
        Hashtbl.replace dst.counters name (prev + v))
      src.counters

  let sorted_bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let tactics_json a =
    Json.Obj
      [ ("sites", Json.Int a.sites);
        ("patched", Json.Int a.sites_patched);
        ("failed", Json.Int a.sites_failed);
        ("b0", Json.Int a.accepted.(tactic_index B0));
        ("b1", Json.Int a.accepted.(tactic_index B1));
        ("b2", Json.Int a.accepted.(tactic_index B2));
        ("t1", Json.Int a.accepted.(tactic_index T1));
        ("t2", Json.Int a.accepted.(tactic_index T2));
        ("t3", Json.Int a.accepted.(tactic_index T3));
        ("pad_bytes", Json.Int a.pad_bytes);
        ("rejects",
         Json.Obj
           (Array.to_list
              (Array.map
                 (fun r -> (reject_name r, Json.Int a.rejected.(reject_index r)))
                 rejects))) ]

  let spans_json a =
    Json.Obj
      (List.map
         (fun (name, (calls, total_ns)) ->
           ( name,
             Json.Obj
               [ ("calls", Json.Int calls);
                 ("total_ns", Json.Int total_ns);
                 ("total_s", Json.Float (float_of_int total_ns /. 1e9)) ] ))
         (sorted_bindings a.spans))

  let span_total a name =
    match Hashtbl.find_opt a.spans name with
    | Some (_, total_ns) -> float_of_int total_ns /. 1e9
    | None -> 0.0

  let span_total_ns a name =
    match Hashtbl.find_opt a.spans name with
    | Some (_, total_ns) -> total_ns
    | None -> 0

  let counter_total a name =
    match Hashtbl.find_opt a.counters name with Some n -> n | None -> 0

  let counters_json a =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (sorted_bindings a.counters))

  let gauges_json a =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (sorted_bindings a.gauges))

  let pp ppf a =
    Format.fprintf ppf "sites=%d patched=%d failed=%d" a.sites a.sites_patched
      a.sites_failed;
    Array.iter
      (fun t ->
        let n = a.accepted.(tactic_index t) in
        if n > 0 then Format.fprintf ppf " %s=%d" (tactic_name t) n)
      tactics;
    Array.iter
      (fun r ->
        let n = a.rejected.(reject_index r) in
        if n > 0 then Format.fprintf ppf " !%s=%d" (reject_name r) n)
      rejects
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type ring_state = { buf : event array; mutable n : int }

type t = Null | Ring of ring_state | Aggregate of Agg.agg

let null = Null

(* The slot array is pre-filled with a throwaway event; slots past [n] are
   never read. *)
let ring ?(capacity = 1 lsl 20) () =
  if capacity <= 0 then invalid_arg "Obs.ring: capacity must be positive";
  Ring { buf = Array.make capacity (Gauge { name = ""; value = 0 }); n = 0 }

let aggregator () = Aggregate (Agg.create ())
let enabled = function Null -> false | Ring _ | Aggregate _ -> true

(* A fresh sink of the same kind, for one domain of a parallel phase.
   Each child is emitted to by exactly one domain and folded back with
   [merge_into] after the join, so no sink is ever shared across
   domains. *)
let fork = function
  | Null -> Null
  | Ring r -> ring ~capacity:(Array.length r.buf) ()
  | Aggregate _ -> Aggregate (Agg.create ())

let emit t e =
  match t with
  | Null -> ()
  | Ring r ->
      r.buf.(r.n mod Array.length r.buf) <- e;
      r.n <- r.n + 1
  | Aggregate a -> Agg.add_event a e

let events = function
  | Null | Aggregate _ -> []
  | Ring r ->
      let cap = Array.length r.buf in
      let len = min r.n cap in
      List.init len (fun i -> r.buf.((r.n - len + i) mod cap))

let dropped = function Null | Aggregate _ -> 0 | Ring r -> max 0 (r.n - Array.length r.buf)

let agg = function
  | Null -> Agg.create ()
  | Aggregate a -> a
  | Ring _ as t -> Agg.of_events (events t)

let merge_into ~dst src =
  match (dst, src) with
  | Null, _ | _, Null -> ()
  | Aggregate d, Aggregate s -> Agg.merge_into ~dst:d s
  | _, (Ring _ as s) -> List.iter (emit dst) (events s)
  | Ring _, Aggregate _ ->
      invalid_arg "Obs.merge_into: cannot replay an aggregate into a ring"

let accept t ~addr ~tactic ~trampoline ~pad ~evictee_distance =
  match t with
  | Null -> ()
  | _ ->
      emit t
        (Attempt
           { addr; tactic; outcome = Accepted { trampoline; pad; evictee_distance } })

let reject t ~addr ~tactic ~reason =
  match t with
  | Null -> ()
  | _ -> emit t (Attempt { addr; tactic; outcome = Rejected reason })

let site t ~addr ~tactic =
  match t with Null -> () | _ -> emit t (Site { addr; tactic })

let gauge t ~name ~value =
  match t with Null -> () | _ -> emit t (Gauge { name; value })

let counter t ~name ~value =
  match t with Null -> () | _ -> emit t (Counter { name; value })

let fault t ~site ~fires =
  match t with Null -> () | _ -> emit t (Fault { site; fires })

let span t name f =
  match t with
  | Null -> f ()
  | _ ->
      let t0 = monotonic_ns () in
      Fun.protect
        ~finally:(fun () ->
          emit t
            (Span
               { name;
                 dur_ns = Int64.to_int (Int64.sub (monotonic_ns ()) t0) }))
        f

(* ------------------------------------------------------------------ *)
(* ndjson                                                              *)
(* ------------------------------------------------------------------ *)

let event_to_json = function
  | Attempt { addr; tactic; outcome } ->
      let base =
        [ ("ev", Json.Str "attempt");
          ("addr", Json.Int addr);
          ("tactic", Json.Str (tactic_name tactic)) ]
      in
      Json.Obj
        (base
        @
        match outcome with
        | Accepted { trampoline; pad; evictee_distance } ->
            [ ("outcome", Json.Str "accepted");
              ("trampoline", Json.Int trampoline);
              ("pad", Json.Int pad);
              ("evictee_distance", Json.Int evictee_distance) ]
        | Rejected r -> [ ("outcome", Json.Str "rejected"); ("reason", Json.Str (reject_name r)) ])
  | Site { addr; tactic } ->
      Json.Obj
        [ ("ev", Json.Str "site");
          ("addr", Json.Int addr);
          ("tactic",
           match tactic with
           | Some t -> Json.Str (tactic_name t)
           | None -> Json.Null) ]
  | Span { name; dur_ns } ->
      Json.Obj
        [ ("ev", Json.Str "span");
          ("name", Json.Str name);
          ("dur_ns", Json.Int dur_ns);
          (* Derived convenience for human readers; dur_ns is the
             authoritative value and the one the reader consumes. *)
          ("dur_s", Json.Float (float_of_int dur_ns /. 1e9)) ]
  | Gauge { name; value } ->
      Json.Obj
        [ ("ev", Json.Str "gauge"); ("name", Json.Str name); ("value", Json.Int value) ]
  | Counter { name; value } ->
      Json.Obj
        [ ("ev", Json.Str "counter"); ("name", Json.Str name); ("value", Json.Int value) ]
  | Fault { site; fires } ->
      Json.Obj
        [ ("ev", Json.Str "fault"); ("site", Json.Str site); ("fires", Json.Int fires) ]

let ( let* ) = Result.bind

let field j key =
  match Json.member key j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field j key =
  let* v = field j key in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S is not an integer" key)

let str_field j key =
  let* v = field j key in
  match v with
  | Json.Str s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" key)

let num_field j key =
  let* v = field j key in
  match v with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S is not a number" key)

let tactic_field j key =
  let* s = str_field j key in
  match tactic_of_name s with
  | Some t -> Ok t
  | None -> Error (Printf.sprintf "field %S: unknown tactic %S" key s)

let event_of_json j =
  match j with
  | Json.Obj _ -> (
      let* ev = str_field j "ev" in
      match ev with
      | "attempt" -> (
          let* addr = int_field j "addr" in
          let* tactic = tactic_field j "tactic" in
          let* outcome = str_field j "outcome" in
          match outcome with
          | "accepted" ->
              let* trampoline = int_field j "trampoline" in
              let* pad = int_field j "pad" in
              let* evictee_distance = int_field j "evictee_distance" in
              Ok
                (Attempt
                   { addr;
                     tactic;
                     outcome = Accepted { trampoline; pad; evictee_distance } })
          | "rejected" -> (
              let* reason = str_field j "reason" in
              match reject_of_name reason with
              | Some r -> Ok (Attempt { addr; tactic; outcome = Rejected r })
              | None -> Error (Printf.sprintf "unknown reject reason %S" reason))
          | other -> Error (Printf.sprintf "unknown outcome %S" other))
      | "site" -> (
          let* addr = int_field j "addr" in
          let* t = field j "tactic" in
          match t with
          | Json.Null -> Ok (Site { addr; tactic = None })
          | Json.Str s -> (
              match tactic_of_name s with
              | Some t -> Ok (Site { addr; tactic = Some t })
              | None -> Error (Printf.sprintf "unknown tactic %S" s))
          | _ -> Error "field \"tactic\" is neither null nor a string")
      | "span" -> (
          let* name = str_field j "name" in
          match int_field j "dur_ns" with
          | Ok dur_ns -> Ok (Span { name; dur_ns })
          | Error _ ->
              (* Pre-nanosecond traces carried only dur_s. *)
              let* dur_s = num_field j "dur_s" in
              Ok (Span { name; dur_ns = int_of_float (dur_s *. 1e9) }))
      | "gauge" ->
          let* name = str_field j "name" in
          let* value = int_field j "value" in
          Ok (Gauge { name; value })
      | "counter" ->
          let* name = str_field j "name" in
          let* value = int_field j "value" in
          Ok (Counter { name; value })
      | "fault" ->
          let* site = str_field j "site" in
          let* fires = int_field j "fires" in
          Ok (Fault { site; fires })
      | other -> Error (Printf.sprintf "unknown event kind %S" other))
  | _ -> Error "trace line is not a JSON object"

let to_ndjson t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (event_to_json e));
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

exception Sink_error of string

(* Atomic: the trace lands under its final name only once fully written,
   so a sink failure (real or injected) never leaves a truncated trace
   masquerading as a complete one. *)
let write_ndjson ?(fault = fun () -> false) t path =
  let tmp = path ^ ".tmp" in
  let write () =
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let s = to_ndjson t in
        if fault () then begin
          (* Simulated short write: half the payload, then the error a
             full disk or yanked volume would produce. *)
          output_string oc (String.sub s 0 (String.length s / 2));
          raise (Sys_error (path ^ ": injected trace-sink write error"))
        end;
        output_string oc s);
    Sys.rename tmp path
  in
  try write ()
  with Sys_error m ->
    if Sys.file_exists tmp then Sys.remove tmp;
    raise (Sink_error m)

let validate_ndjson s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.of_string line with
        | Error m -> Error (Printf.sprintf "line %d: %s" i m)
        | Ok j -> (
            match event_of_json j with
            | Error m -> Error (Printf.sprintf "line %d: %s" i m)
            | Ok e -> go (e :: acc) (i + 1) rest))
  in
  go [] 1 lines

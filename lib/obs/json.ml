type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* NaN/inf have no JSON spelling; null keeps consumers honest. *)
      if Float.is_finite f then begin
        (* Shortest representation that round-trips: fixed %.6g turned
           every sub-microsecond span total into "0" or a 6-digit
           truncation. 17 significant digits always round-trip a
           double; shorter is used whenever it re-parses exactly. *)
        let rec shortest p =
          if p >= 17 then Printf.sprintf "%.17g" f
          else
            let s = Printf.sprintf "%.*g" p f in
            if float_of_string s = f then s else shortest (p + 1)
        in
        Buffer.add_string b (shortest 6)
      end
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  write b j;
  Buffer.contents b

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at %d, got '%c'" c !pos c'
    | None -> fail "expected '%c' at %d, got end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "bad literal at %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape %s" hex
            in
            (* The printer only emits \u for control bytes; decode those
               exactly and refuse anything needing real UTF-16 handling. *)
            if code < 128 then Buffer.add_char b (Char.chr code)
            else fail "unsupported \\u%s (non-ASCII)" hex
        | c -> fail "bad escape '\\%c'" c);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number %S" text
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let entry () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ entry () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := entry () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected '%c' at %d" c !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse m -> Error m

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

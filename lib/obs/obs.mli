(** E9_obs: structured telemetry for the rewrite hot path (DESIGN.md §9).

    The paper's evaluation hinges on per-tactic breakdowns — how often
    B1/B2/T1/T2/T3 fire and {e why} the others did not. This module is the
    event vocabulary and the sinks. Producers (the tactic engine, the
    layout allocator, the bench pipeline) emit through a {!t} handle; with
    the {!null} handle attached every emission is a single branch on an
    immediate value, so the hot path pays nothing when nobody is
    listening.

    Two real sinks are provided: an in-memory ring (bounded, oldest
    events dropped) for ndjson export ([e9patch patch --trace FILE]) and a
    streaming aggregator (constant memory) for the bench pipeline, whose
    per-tactic histogram and span totals land in
    [BENCH_throughput.json]. *)

(** Patch tactics, mirrored from [E9_core.Stats.tactic] (this library
    sits below lib/core, so it cannot reference it). *)
type tactic = B0 | B1 | B2 | T1 | T2 | T3

(** Why a tactic refused a site. *)
type reject =
  | Too_short  (** the instruction has too few bytes for this tactic *)
  | Locked  (** an earlier patch locked bytes the tactic must modify *)
  | Pun_miss  (** the punned displacement would read outside the text *)
  | Range  (** the reachable target window clamped to empty *)
  | Alloc_conflict  (** a valid window, but the allocator found no gap *)
  | No_successor  (** T2: the next address is not a displaceable site *)
  | Budget  (** the candidate-search budget ran out *)
  | Injected  (** a fault-injection rule refused the query (DESIGN.md §11) *)
  | Dead_window
      (** the window is blocked by the base occupancy (guards/segments)
          alone — structurally unservable by any allocator (DESIGN.md §12) *)
  | Stripe_blocked
      (** free space exists but only in stripes a foreign shard owns; the
          site is retried against the absorbed layout after the join *)

type outcome =
  | Accepted of { trampoline : int; pad : int; evictee_distance : int }
      (** [pad] is the bytes of prefix padding (T1); [evictee_distance]
          the byte distance from the patch site to the displaced victim
          (T2/T3), 0 when nothing was evicted. *)
  | Rejected of reject

type event =
  | Attempt of { addr : int; tactic : tactic; outcome : outcome }
      (** one record per tactic tried at a patch site *)
  | Site of { addr : int; tactic : tactic option }
      (** final per-site verdict; [None] = all tactics fell through *)
  | Span of { name : string; dur_ns : int }
      (** a timed phase (decode, tactic_search, layout, serialize,
          plan_replay), in monotonic nanoseconds — integer ns all the way
          to the reporting edge, so sub-microsecond phases aggregate to
          their true total instead of rounding to 0 per call *)
  | Gauge of { name : string; value : int }
      (** point-in-time occupancy/fragmentation reading *)
  | Counter of { name : string; value : int }
      (** monotonic count (emulator cache hits/misses/invalidations) *)
  | Fault of { site : string; fires : int }
      (** end-of-run fault-injection summary: how many times rules at
          [site] fired (one event per site with fires > 0) *)

val tactic_name : tactic -> string
val reject_name : reject -> string

(** [monotonic_ns ()] — [CLOCK_MONOTONIC] in nanoseconds (C stub):
    immune to wall-clock steps, fine enough for sub-microsecond spans.
    Only differences are meaningful. *)
val monotonic_ns : unit -> int64

(** {1 Sinks} *)

type t

(** The detached sink: [enabled] is false, every emission is a no-op. *)
val null : t

(** [ring ~capacity ()] buffers the most recent [capacity] events
    (default 1 lsl 20). *)
val ring : ?capacity:int -> unit -> t

(** [aggregator ()] folds events into an {!Agg.t} as they arrive and
    stores nothing else — constant memory however many sites a rewrite
    visits. *)
val aggregator : unit -> t

val enabled : t -> bool
val emit : t -> event -> unit

(** [fork t] is a fresh detached sink of [t]'s kind ({!null} stays
    {!null}), for one domain of a parallel phase: each domain emits into
    its own fork and the parent folds them back with {!merge_into} after
    the join, in a canonical order, so no sink is ever shared across
    domains and the merged stream is identical for every domain count. *)
val fork : t -> t

(** [merge_into ~dst src] folds a forked sink back into its parent:
    ring events are re-emitted into [dst] in order, aggregates are added
    with {!Agg.merge_into}; {!null} on either side is a no-op. Replaying
    an aggregate into a ring is impossible and raises
    [Invalid_argument]. *)
val merge_into : dst:t -> t -> unit

(** [events t] — ring contents, oldest first ([[]] for other sinks). *)
val events : t -> event list

(** [dropped t] — events lost to ring overflow. *)
val dropped : t -> int

(** {1 Guarded emission helpers}

    These construct the event only when the sink is attached, so callers
    on the hot path need no [if Obs.enabled] of their own. *)

val accept :
  t -> addr:int -> tactic:tactic -> trampoline:int -> pad:int ->
  evictee_distance:int -> unit

val reject : t -> addr:int -> tactic:tactic -> reason:reject -> unit
val site : t -> addr:int -> tactic:tactic option -> unit
val gauge : t -> name:string -> value:int -> unit
val counter : t -> name:string -> value:int -> unit
val fault : t -> site:string -> fires:int -> unit

(** [span t name f] runs [f] and emits its wall-clock duration; with the
    null sink it is exactly [f ()] (no clock reads). Exceptions from [f]
    still emit the span. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** {1 Aggregation} *)

module Agg : sig
  (** A Table-3-style rollup: per-tactic acceptance counts, reject-reason
      histogram, padding-byte total, span totals, last gauge values and
      summed counters. Mutable; merge partial aggregates from parallel
      domains with {!merge_into}. *)
  type agg = {
    accepted : int array;  (** indexed by {!tactic} *)
    rejected : int array;  (** indexed by {!reject} *)
    mutable sites : int;
    mutable sites_patched : int;
    mutable sites_failed : int;
    mutable pad_bytes : int;
    spans : (string, int * int) Hashtbl.t;  (** name -> calls, total ns *)
    gauges : (string, int) Hashtbl.t;  (** name -> last value *)
    counters : (string, int) Hashtbl.t;  (** name -> sum *)
  }

  val create : unit -> agg
  val add_event : agg -> event -> unit
  val of_events : event list -> agg

  (** [merge_into ~dst src] adds [src] into [dst] (gauges: [src] wins). *)
  val merge_into : dst:agg -> agg -> unit

  (** [span_total a name] is the summed duration of span [name] in
      seconds (0 when it never ran) — the lookup the bench sweep and the
      RPC service's per-request accounting both need. Computed from the
      integer-nanosecond total, so it is exact to 1ns however short the
      individual calls were. *)
  val span_total : agg -> string -> float

  (** [span_total_ns a name] is the raw integer-nanosecond total. *)
  val span_total_ns : agg -> string -> int

  (** [counter_total a name] is the summed value of counter [name]
      (0 when never emitted). *)
  val counter_total : agg -> string -> int

  (** [tactics_json a] is the histogram object for
      [BENCH_throughput.json]: accepted counts keyed [b0..t3], site
      totals, [pad_bytes] and a [rejects] sub-object. *)
  val tactics_json : agg -> Json.t

  (** [spans_json a] maps each span name to [{calls, total_ns,
      total_s}]; [total_ns] is authoritative, [total_s] derived. *)
  val spans_json : agg -> Json.t

  val counters_json : agg -> Json.t
  val gauges_json : agg -> Json.t
  val pp : Format.formatter -> agg -> unit
end

(** [agg t] — the aggregator's rollup, or one computed from a ring's
    buffered events (empty for {!null}). *)
val agg : t -> Agg.agg

(** {1 ndjson export and schema validation} *)

val event_to_json : event -> Json.t

(** [event_of_json j] validates one trace line against the schema —
    required keys, value types, enum spellings — and reconstructs the
    event. [Error] strings name the offending field. *)
val event_of_json : Json.t -> (event, string) result

(** [to_ndjson t] renders the ring's events, one JSON object per line. *)
val to_ndjson : t -> string

(** A trace-sink write failed; the partially written temp file has been
    removed and nothing exists at the destination path. *)
exception Sink_error of string

(** [write_ndjson t path] writes {!to_ndjson} output to [path],
    atomically (temp file + rename): either the complete trace lands at
    [path] or {!Sink_error} is raised and no file is left behind. [fault]
    (used by the injection campaign) simulates a short write when it
    returns [true]. *)
val write_ndjson : ?fault:(unit -> bool) -> t -> string -> unit

(** [validate_ndjson s] parses and schema-checks every line. *)
val validate_ndjson : string -> (event list, string) result

# Convenience wrappers around dune. CI runs `build`, `test`, `bench-smoke`.

DUNE ?= dune
SMOKE_TIMEOUT ?= 300

.PHONY: all build test bench bench-smoke fmt clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Full evaluation run: every table/figure, all sizes. Minutes, not for CI.
bench: build
	$(DUNE) exec bench/main.exe

# Reduced bench under a hard timeout: the experiments that exercise the
# emulator throughput path (scalability) and end-to-end patched-binary
# emulation (figure4), at --smoke sizes. Writes BENCH_throughput.json.
bench-smoke: build
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bench/main.exe -- --smoke scalability figure4

clean:
	$(DUNE) clean

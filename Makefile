# Convenience wrappers around dune. CI runs `build`, `test`, `fuzz-smoke`,
# `bench-smoke`.

# The smoke targets tee their output into a log file; without pipefail a
# crashed bench/fuzz run would exit with tee's (successful) status and CI
# would go green on a failure.
SHELL := /bin/bash
.SHELLFLAGS := -e -o pipefail -c

DUNE ?= dune
SMOKE_TIMEOUT ?= 300
FUZZ_N ?= 200
FUZZ_SEED ?= 42
FAULT_N ?= 500
FAULT_RPC_N ?= 60
FAULT_SEED ?= 42

# Domains per rewrite for serve-smoke's daemon (`serve -j`). Output bytes
# are jobs-invariant, so CI runs the target at 1 and 4 and diffs nothing
# but the clock.
SERVE_JOBS ?= 1

# Rewriter domain count for the smoke targets. Empty means the binary's
# own default (serial, or the E9_JOBS environment variable). The outputs
# are jobs-invariant by construction, so CI runs the same targets under
# BENCH_JOBS=1 and BENCH_JOBS=4 and expects identical results.
BENCH_JOBS ?=
BENCH_JOBS_FLAG = $(if $(BENCH_JOBS),--jobs $(BENCH_JOBS))

.PHONY: all build test bench bench-smoke fuzz-smoke fault-smoke robust-smoke serve-smoke incremental-smoke tool-smoke fmt clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Full evaluation run: every table/figure, all sizes. Minutes, not for CI.
bench: build
	$(DUNE) exec bench/main.exe

# Reduced bench under a hard timeout: the experiments that exercise the
# emulator throughput path (scalability), end-to-end patched-binary
# emulation (figure4), the sharded-rewriter jobs-invariance sweep
# (parallel), the allocator micro-benchmark against its linear-scan
# baseline (iset), and the rewriting-service throughput/caching run
# (serve), and the incremental plan-cache cold-vs-warm series
# (incremental), at --smoke sizes. Writes BENCH_throughput.json.
bench-smoke: build
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bench/main.exe -- --smoke $(BENCH_JOBS_FLAG) scalability figure4 parallel iset serve incremental | tee bench_output.txt

# Fixed-seed differential fuzz campaign: random profile × tactic configs,
# each rewrite checked by the static verifier and the trace oracle.
# Deterministic; seconds, not minutes — safe for CI.
fuzz-smoke: build
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- fuzz -n $(FUZZ_N) --seed $(FUZZ_SEED) | tee fuzz_output.txt

# Fixed-seed fault-injection campaign (DESIGN.md §11): random rewrite
# cases × random fault schedules; every injected fault must degrade to a
# verified output, be accounted per-site, or raise a typed error with no
# partial file — byte-identically across domain counts. CI runs this
# under E9_JOBS=1 and E9_JOBS=4.
fault-smoke: build
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- fault -n $(FAULT_N) --seed $(FAULT_SEED) | tee fault_output.txt
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- fault --rpc -n $(FAULT_RPC_N) --seed $(FAULT_SEED) | tee -a fault_output.txt

# Robustness corpus: every adversarial family (lock prefixes, tiny-insn
# starvation, mid-function data islands, stripped headers, endbr64
# entries, PIE/DSO regimes, far rel32, alias padding) scored against its
# pinned pass-rate floor; exits non-zero if any family regresses. Writes
# the machine-readable matrix to robust_matrix.json. Deterministic and
# jobs-invariant; CI runs it under E9_JOBS=1 and E9_JOBS=4.
robust-smoke: build
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- robust --json robust_matrix.json | tee robust_output.txt

# Daemon end-to-end smoke (DESIGN.md §13): boot `serve` in stdio mode with
# per-session telemetry, replay a canned five-message session (load, patch,
# emit to a file, status, shutdown), then verify the emitted binary against
# the input with the independent checker. Asserts the emit was verified,
# the checker accepts the output, and the session left an obs trace
# (serve-smoke/session-0.ndjson — CI uploads it).
serve-smoke: build
	rm -rf serve-smoke && mkdir -p serve-smoke
	$(DUNE) exec bin/e9patch_cli.exe -- generate -o serve-smoke/input.elf --functions 25 --iterations 40 --seed 7
	printf '%s\n' \
	  '{"jsonrpc":"2.0","id":1,"method":"binary","params":{"filename":"serve-smoke/input.elf"}}' \
	  '{"jsonrpc":"2.0","id":2,"method":"patch","params":{"spec":"patch jumps with counter"}}' \
	  '{"jsonrpc":"2.0","id":3,"method":"emit","params":{"filename":"serve-smoke/out.elf"}}' \
	  '{"jsonrpc":"2.0","id":4,"method":"status"}' \
	  '{"jsonrpc":"2.0","id":5,"method":"shutdown"}' \
	  > serve-smoke/session.jsonl
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- serve -j $(SERVE_JOBS) --trace-dir serve-smoke < serve-smoke/session.jsonl | tee serve_output.txt
	grep -q '"verified":true' serve_output.txt
	$(DUNE) exec bin/e9patch_cli.exe -- check serve-smoke/input.elf serve-smoke/out.elf | tee -a serve_output.txt
	test -s serve-smoke/session-0.ndjson

# Incremental-rewriting smoke (DESIGN.md §14): an N-revision series with
# ~1% churn per step, each revision rewritten cold (fresh plan store) and
# warm (shared store). The bench itself fails if any warm output differs
# from cold, if the static verifier rejects anything, or if the warm pass
# is not at least 2x faster than cold over the incremental revisions; the
# grep pins the byte-identity line into the log. CI runs this under
# BENCH_JOBS=1 and BENCH_JOBS=4 — plan replay must not disturb the
# jobs-invariance contract.
incremental-smoke: build
	timeout $(SMOKE_TIMEOUT) $(DUNE) exec bench/main.exe -- --smoke $(BENCH_JOBS_FLAG) incremental | tee incremental_output.txt
	grep -q 'identical' incremental_output.txt
	! grep -q 'DIFFERS\|FAIL' incremental_output.txt

# Tool-frontend smoke (DESIGN.md §15): one matcher x patch pair per
# builtin (print, count, trap, empty, lowfat) plus a three-argument clean
# call trampoline, each rewritten at jobs 1 and jobs 4 with --check (the
# E9_check static verifier and the trace oracle with the instrumentation
# pages private), and the two outputs byte-compared. A generated input is
# used so the target is hermetic and deterministic.
tool-smoke: build
	rm -rf tool-smoke && mkdir -p tool-smoke
	$(DUNE) exec bin/e9patch_cli.exe -- generate -o tool-smoke/input.elf --functions 40 --iterations 80 --seed 7
	printf '%s\n' \
	  'jumps|print' \
	  'all|count' \
	  'returns|trap' \
	  'heap-writes|lowfat' \
	  'mnemonic mov and op[0].type == reg|empty' \
	  'calls|call:clean record(addr,size,3)' \
	  > tool-smoke/pairs.txt
	{ i=0; \
	while IFS='|' read -r m p; do \
	  i=$$((i+1)); \
	  echo "=== [$$i] -M $$m -P $$p"; \
	  timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- tool tool-smoke/input.elf -o tool-smoke/out$$i.j1.elf -M "$$m" -P "$$p" -j 1 --check; \
	  timeout $(SMOKE_TIMEOUT) $(DUNE) exec bin/e9patch_cli.exe -- tool tool-smoke/input.elf -o tool-smoke/out$$i.j4.elf -M "$$m" -P "$$p" -j 4; \
	  cmp tool-smoke/out$$i.j1.elf tool-smoke/out$$i.j4.elf; \
	  echo "jobs 1 vs 4: byte-identical"; \
	done < tool-smoke/pairs.txt; } 2>&1 | tee tool_output.txt
	grep -q 'dynamic: OK' tool_output.txt
	test "$$(grep -c 'byte-identical' tool_output.txt)" = 6
	! grep -qE 'FAIL|diverged' tool_output.txt

clean:
	$(DUNE) clean

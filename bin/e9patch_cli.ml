(* The e9patch command-line tool: static binary rewriting, synthetic
   binary generation, emulation, and disassembly.

     e9patch generate -o prog.elf --seed 7
     e9patch disasm prog.elf
     e9patch patch prog.elf -o patched.elf --select jumps --template counter
     e9patch run patched.elf *)

module Codegen = E9_workload.Codegen
module Suite = E9_workload.Suite
module Machine = E9_emu.Machine
module Cpu = E9_emu.Cpu
module Rewriter = E9_core.Rewriter
module Plan = E9_core.Plan
module Tactics = E9_core.Tactics
module Stats = E9_core.Stats
module Trampoline = E9_core.Trampoline
module Lowfat = E9_lowfat.Lowfat
module Patchspec = E9_spec.Patchspec
module Tool = E9_tool.Tool
module Obs = E9_obs.Obs
module Fault = E9_fault.Fault

open Cmdliner

let printf = Format.printf

(* Typed failures become one-line diagnostics, not backtraces.  Every
   subcommand body runs under this wrapper. *)
let or_die f =
  try f () with
  | Frontend.Error m
  | Rewriter.Error m
  | Lowfat.Error m
  | Codegen.Error m
  | Tool.Error m
  | Elf_file.Io_error m
  | Invalid_argument m
  | Failure m ->
      Printf.eprintf "e9patch: %s\n" m;
      exit 1
  | Patchspec.Parse_error { line; col; message } ->
      Printf.eprintf "e9patch: %d:%d: %s\n" line col message;
      exit 1
  | Elf_file.Malformed m ->
      Printf.eprintf "e9patch: malformed ELF: %s\n" m;
      exit 1
  | Fault.Parse_error m ->
      Printf.eprintf "e9patch: bad --inject spec: %s\n" m;
      exit 1

(* Shared -v / -vv verbosity flag wiring Logs. *)
let setup_logs =
  let init flags =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level
      (match List.length flags with
      | 0 -> Some Logs.Warning
      | 1 -> Some Logs.Info
      | _ -> Some Logs.Debug)
  in
  Term.(
    const init
    $ Arg.(
        value & flag_all
        & info [ "v"; "verbose" ]
            ~doc:"Verbosity (-v progress, -v -v per-site tactic decisions)."))

(* ------------------------------------------------------------------ *)
(* patch                                                               *)
(* ------------------------------------------------------------------ *)

let select_of = function
  | "jumps" -> Frontend.select_jumps
  | "heap-writes" -> Frontend.select_heap_writes
  | "all" ->
      fun s -> Frontend.select_jumps s || Frontend.select_heap_writes s
  | other -> failwith ("unknown selector: " ^ other)

let template_of = function
  | "empty" -> Trampoline.Empty
  | "counter" -> Trampoline.Counter
  | "lowfat" -> Trampoline.Lowfat_check
  | other -> failwith ("unknown template: " ^ other)

let patch_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUTPUT" ~doc:"Patched binary path.")
  in
  let select =
    Arg.(
      value
      & opt (enum [ ("jumps", "jumps"); ("heap-writes", "heap-writes"); ("all", "all") ]) "jumps"
      & info [ "select" ] ~doc:"Patch locations: jumps (A1), heap-writes (A2), or all.")
  in
  let template =
    Arg.(
      value
      & opt (enum [ ("empty", "empty"); ("counter", "counter"); ("lowfat", "lowfat") ]) "empty"
      & info [ "template" ]
          ~doc:"Trampoline payload: empty, counter, or lowfat (redzone checks).")
  in
  let granularity =
    Arg.(
      value & opt int 1
      & info [ "M"; "granularity" ]
          ~doc:"Physical page grouping block size, in pages (paper §4).")
  in
  let no_grouping =
    Arg.(value & flag & info [ "no-grouping" ] ~doc:"Naive one-to-one physical mapping.")
  in
  let shared =
    Arg.(
      value & flag
      & info [ "shared" ]
          ~doc:"Shared-object mode: the dynamic linker owns the space below the base.")
  in
  let b0 =
    Arg.(value & flag & info [ "b0-fallback" ] ~doc:"Use int3 traps when all tactics fail.")
  in
  let no_t1 = Arg.(value & flag & info [ "no-t1" ] ~doc:"Disable padded jumps.") in
  let no_t2 = Arg.(value & flag & info [ "no-t2" ] ~doc:"Disable successor eviction.") in
  let no_t3 = Arg.(value & flag & info [ "no-t3" ] ~doc:"Disable neighbour eviction.") in
  let stub =
    Arg.(
      value & flag
      & info [ "stub-loader" ]
          ~doc:"Inject the x86 loader stub (the paper's mechanism) instead of \
                the metadata mapping table.")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ]
          ~doc:"A patch-spec program (overrides --select/--template), e.g. \
                'patch heap-writes with lowfat; patch jumps with counter'.")
  in
  let spec_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "spec-file" ] ~doc:"Read the patch spec from a file.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write structured rewrite telemetry (per-tactic attempts, \
                phase timings, allocator gauges) to $(docv) as ndjson, one \
                event per line.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel tactic search and chunked decode \
                (default: \\$E9_JOBS, else 1). Output bytes are identical \
                for every $(docv).")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:"Deterministic fault injection (testing): comma-separated \
                rules $(b,site@N) (fire on the Nth occurrence, 0-based), \
                $(b,site@N+) (from the Nth on) or $(b,site%N) (every Nth); \
                sites: alloc, b0alloc, decode, shard, trace, write. E.g. \
                'alloc\\@3,write\\@0'.")
  in
  let plan_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan-cache" ] ~docv:"FILE"
          ~doc:"Incremental rewriting: split the text into content-defined \
                chunks, replay cached per-chunk rewrite plans from $(docv) \
                for unchanged chunks, search the changed ones live, and \
                save the updated plans back. Output bytes are identical to \
                a cold rewrite; repeat rewrites of a lightly edited binary \
                cost O(changed bytes). Created on first use.")
  in
  let run () input output select template granularity no_grouping shared b0
      no_t1 no_t2 no_t3 stub spec_arg spec_file trace jobs inject plan_cache =
   or_die @@ fun () ->
    let fault =
      match inject with
      | None -> Fault.none
      | Some spec -> Fault.create (Fault.parse spec)
    in
    let elf = Elf_file.read_file input in
    let options =
      { Rewriter.tactics =
          { Tactics.default_options with
            Tactics.enable_t1 = not no_t1;
            enable_t2 = not no_t2;
            enable_t3 = not no_t3;
            b0_fallback = b0 };
        granularity;
        grouping = not no_grouping;
        reserve_below_base = shared;
        loader = (if stub then Rewriter.Stub else Rewriter.Table);
        shard_span = Rewriter.default_options.Rewriter.shard_span;
        keep_ranges = [];
        chunking =
          (if plan_cache <> None then Some Chunker.default else None) }
    in
    let spec =
      match (spec_arg, spec_file) with
      | Some _, Some _ -> failwith "--spec and --spec-file are exclusive"
      | Some src, None -> Some (Patchspec.parse src)
      | None, Some path ->
          let ic = open_in path in
          let src =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Some (Patchspec.parse src)
      | None, None -> None
    in
    let select_name = select and template_name = template in
    let select, template =
      match spec with
      | Some spec -> Patchspec.to_rewriter_args spec
      | None -> (select_of select, fun _ -> template_of template)
    in
    let plan_table = Option.map Plan.load_table plan_cache in
    let plan =
      Option.map
        (fun table ->
          let text_base =
            match Frontend.find_text elf with
            | Some t -> t.Frontend.base
            | None -> 0
          in
          (* Spec identity per chunk: for a parsed spec, the canonical
             syntax of the rules that may match in the chunk's address
             range; for the builtin selectors, their names (address-free,
             so the whole-spec key is already per-chunk exact). *)
          let spec_key ~lo ~len =
            match spec with
            | Some s ->
                Patchspec.fragment_key
                  (Patchspec.fragment_for_range s ~lo:(text_base + lo)
                     ~hi:(text_base + lo + len))
            | None -> Printf.sprintf "sel=%s;tpl=%s" select_name template_name
          in
          { Plan.store = Plan.table_store table; spec_key })
        plan_table
    in
    let obs =
      match trace with Some _ -> Obs.ring () | None -> Obs.null
    in
    let r =
      Rewriter.run ~options ~obs ~fault ?jobs ?plan elf ~select ~template
    in
    (match (plan_table, plan_cache) with
    | Some table, Some file ->
        Plan.save_table table file;
        printf
          "plan cache: %d hits, %d misses, %d conflicts; %d plans -> %s@."
          r.Rewriter.plan_hits r.Rewriter.plan_misses
          r.Rewriter.plan_conflicts (Plan.table_size table) file
    | _ -> ());
    Elf_file.write_file
      ~fault:(fun () -> Fault.fires fault Fault.Write)
      r.Rewriter.output output;
    printf "%a@." Stats.pp r.Rewriter.stats;
    printf "size: %d -> %d bytes (%.1f%%); %d trampoline bytes; %d mappings@."
      r.Rewriter.input_size r.Rewriter.output_size (Rewriter.size_pct r)
      r.Rewriter.trampoline_bytes r.Rewriter.mappings;
    (match trace with
    | None -> ()
    | Some path -> (
        match
          Obs.write_ndjson
            ~fault:(fun () -> Fault.fires fault Fault.Trace)
            obs path
        with
        | () ->
            (if Obs.dropped obs > 0 then
               printf "trace: ring overflowed, %d oldest events dropped@."
                 (Obs.dropped obs));
            printf "trace: %d events -> %s@."
              (List.length (Obs.events obs))
              path;
            printf "%a@." Obs.Agg.pp (Obs.agg obs)
        | exception Obs.Sink_error m ->
            (* A lost trace must not fail the patch: the rewritten
               binary is already written and verified. *)
            printf "trace: %s (patched binary is intact)@." m));
    (if inject <> None then
       let total = Fault.fired_total fault in
       if total = 0 then printf "inject: no rule fired@."
       else
         Array.iter
           (fun s ->
             let n = Fault.fired fault s in
             if n > 0 then
               printf "inject: %s fired %d time(s)@." (Fault.site_name s) n)
           Fault.sites);
    printf "wrote %s@." output
  in
  Cmd.v (Cmd.info "patch" ~doc:"Statically rewrite a binary (no control flow recovery).")
    Term.(
      const run $ setup_logs $ input $ output $ select $ template
      $ granularity $ no_grouping $ shared $ b0 $ no_t1 $ no_t2 $ no_t3
      $ stub $ spec_arg $ spec_file $ trace $ jobs $ inject $ plan_cache)

(* ------------------------------------------------------------------ *)
(* tool                                                                *)
(* ------------------------------------------------------------------ *)

let tool_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUTPUT" ~doc:"Instrumented binary path.")
  in
  let matches =
    Arg.(
      value & opt_all string []
      & info [ "M"; "match" ] ~docv:"MATCH"
          ~doc:"Match expression ($(b,jumps), $(b,op[0].type == mem), \
                $(b,addr >= 0x400000 and addr < 0x401000), \
                $(b,defined(target)), ...); semicolon-separated pieces \
                conjoin and $(b,exclude FILE.csv) pieces subtract the \
                CSV's LO,HI address ranges. Repeatable; the Nth -M pairs \
                with the Nth -P, first match wins.")
  in
  let patches =
    Arg.(
      value & opt_all string []
      & info [ "P"; "patch" ] ~docv:"PATCH"
          ~doc:"Patch for the paired match: $(b,print), $(b,count), \
                $(b,trap), $(b,empty), $(b,lowfat), or \
                $(b,call[:clean|:naked] FN(ARGS)) with args from \
                asm|addr|instr|size, register names and integer literals \
                (FN: $(b,counter), $(b,record), or a hex address).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel tactic search (default: \
                \\$E9_JOBS, else 1). Output bytes are identical for \
                every $(docv).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Verify the output before writing it: the static verifier \
                plus the trace oracle (instrumentation-private state \
                excluded). Naked-call patches fail the trace oracle by \
                design — their call pushes a return address on the guest \
                stack.")
  in
  let emit_augmented =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-augmented" ] ~docv:"PATH"
          ~doc:"Also write the augmented input (the input plus the \
                injected instrumentation pages) — the $(b,original) a \
                later $(b,e9patch check) run must verify against.")
  in
  let run () input output matches patches jobs check emit_augmented =
   or_die @@ fun () ->
    if matches = [] then failwith "need at least one -M/-P pair";
    if List.length matches <> List.length patches then
      failwith
        (Printf.sprintf "got %d -M but %d -P (they pair up in order)"
           (List.length matches) (List.length patches));
    let rules = List.map2 (fun m p -> Tool.rule_of ~m ~p ()) matches patches in
    let elf = Elf_file.read_file input in
    let res = Tool.run ?jobs elf rules in
    let r = res.Tool.rewrite and rt = res.Tool.runtime in
    if check then (
      (match
         E9_check.Static.verify ~original:rt.Tool.augmented r.Rewriter.output
       with
      | Ok report ->
          printf "static: OK — %a@." E9_check.Static.pp_report report
      | Error e ->
          printf "static: %a@." E9_check.Static.pp_error e;
          exit 1);
      match
        E9_check.Trace.compare_runs ~instr_ranges:rt.Tool.instr_ranges
          ~original:rt.Tool.augmented r.Rewriter.output
      with
      | Ok stats -> printf "dynamic: OK — %a@." E9_check.Trace.pp_stats stats
      | Error msg ->
          printf "dynamic: %s@." msg;
          exit 1);
    (match emit_augmented with
    | Some path ->
        Elf_file.write_file rt.Tool.augmented path;
        printf "wrote augmented input %s@." path
    | None -> ());
    Elf_file.write_file r.Rewriter.output output;
    printf "%a@." Stats.pp r.Rewriter.stats;
    printf "size: %d -> %d bytes (%.1f%%); %d trampoline bytes; %d mappings@."
      r.Rewriter.input_size r.Rewriter.output_size (Rewriter.size_pct r)
      r.Rewriter.trampoline_bytes r.Rewriter.mappings;
    printf "runtime: data page 0x%x, code page 0x%x (%s)@." rt.Tool.data_base
      rt.Tool.code_base
      (String.concat " "
         (List.map
            (fun (n, a) -> Printf.sprintf "%s=0x%x" n a)
            rt.Tool.fns));
    printf "wrote %s@." output
  in
  Cmd.v
    (Cmd.info "tool"
       ~doc:"E9Tool-style frontend: compile -M MATCH -P PATCH pairs \
             (operand/address attributes, CSV exclusions; print, count, \
             trap, empty, lowfat and call trampolines with the \
             argument-passing ABI) into a verified rewrite.")
    Term.(
      const run $ setup_logs $ input $ output $ matches $ patches $ jobs
      $ check $ emit_augmented)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUTPUT")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let functions =
    Arg.(value & opt int 60 & info [ "functions" ] ~doc:"Function count (text size).")
  in
  let iterations =
    Arg.(value & opt int 400 & info [ "iterations" ] ~doc:"Main-loop trips.")
  in
  let pie = Arg.(value & flag & info [ "pie" ] ~doc:"Position independent (loads high).") in
  let bench =
    Arg.(
      value
      & opt (some string) None
      & info [ "bench" ]
          ~doc:"Use a Table 1 suite profile (e.g. perlbench, chrome, libc.so).")
  in
  let run output seed functions iterations pie bench =
   or_die @@ fun () ->
    let profile =
      match bench with
      | Some name -> (
          match Suite.find name with
          | Some row -> row.Suite.profile
          | None -> failwith ("unknown benchmark: " ^ name))
      | None ->
          { Codegen.default_profile with
            Codegen.seed = Int64.of_int seed; functions; iterations; pie }
    in
    let elf = Codegen.generate profile in
    Elf_file.write_file elf output;
    let text = Option.get (Frontend.find_text elf) in
    printf "wrote %s: %d bytes of text at 0x%x (%s)@." output
      text.Frontend.size text.Frontend.base
      (match elf.Elf_file.etype with Elf_file.Dyn -> "DYN" | Elf_file.Exec -> "EXEC")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic test binary.")
    Term.(const run $ output $ seed $ functions $ iterations $ pie $ bench)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let lowfat =
    Arg.(value & flag & info [ "lowfat" ] ~doc:"Use the low-fat allocator runtime.")
  in
  let fuel =
    Arg.(value & opt int Cpu.default_config.Cpu.fuel & info [ "fuel" ])
  in
  let counters =
    Arg.(value & flag & info [ "counters" ] ~doc:"Dump instrumentation counters.")
  in
  let run input lowfat fuel counters =
   or_die @@ fun () ->
    let elf = Elf_file.read_file input in
    let config = { Cpu.default_config with Cpu.fuel } in
    let make_allocator =
      if lowfat then Some Lowfat.make_allocator else None
    in
    let r = Machine.run ~config ?make_allocator elf in
    if String.length r.Cpu.output > 0 then
      printf "output (%d bytes): %s@." (String.length r.Cpu.output)
        (String.concat ""
           (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
              (List.of_seq (String.to_seq r.Cpu.output))));
    printf "instructions: %d, cycles: %d, far jumps: %d, traps: %d@."
      r.Cpu.insns r.Cpu.cycles r.Cpu.far_jumps r.Cpu.traps;
    if counters then
      List.iter (fun (site, n) -> printf "  counter 0x%x: %d@." site n) r.Cpu.counters;
    match r.Cpu.outcome with
    | Cpu.Exited n ->
        printf "exited %d@." n;
        exit n
    | Cpu.Fault (a, m) ->
        printf "FAULT at 0x%x: %s@." a m;
        exit 139
    | Cpu.Violation p ->
        printf "REDZONE VIOLATION at 0x%x@." p;
        exit 134
    | Cpu.Out_of_fuel ->
        printf "out of fuel@.";
        exit 124
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a binary on the x86_64 subset emulator.")
    Term.(const run $ input $ lowfat $ fuel $ counters)

(* ------------------------------------------------------------------ *)
(* disasm                                                              *)
(* ------------------------------------------------------------------ *)

let disasm_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let limit = Arg.(value & opt int 64 & info [ "limit" ] ~doc:"Max instructions.") in
  let run input limit =
   or_die @@ fun () ->
    let elf = Elf_file.read_file input in
    let _, sites = Frontend.disassemble elf in
    List.iteri
      (fun i (s : Frontend.site) ->
        if i < limit then
          printf "%8x: %-24s%s%s@." s.Frontend.addr
            (E9_x86.Insn.to_string s.Frontend.insn)
            (if Frontend.select_jumps s then "  [A1]" else "")
            (if Frontend.select_heap_writes s then "  [A2]" else ""))
      sites;
    printf "(%d instructions total)@." (List.length sites)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Linear disassembly of the text section.")
    Term.(const run $ input $ limit)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd =
  let original =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ORIGINAL")
  in
  let rewritten =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"REWRITTEN")
  in
  let from =
    Arg.(
      value
      & opt (some int) None
      & info [ "from" ]
          ~doc:"Code start address the rewrite's linear sweep used (the \
                ChromeMain workaround); must match for the byte accounting.")
  in
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:"Also run both binaries and compare architectural traces \
                (assumes empty trampoline templates).")
  in
  let run () original rewritten from dynamic =
   or_die @@ fun () ->
    let orig = Elf_file.read_file original in
    let rewr = Elf_file.read_file rewritten in
    (match E9_check.Static.verify ?disasm_from:from ~original:orig rewr with
    | Ok report ->
        printf "static: OK — %a@." E9_check.Static.pp_report report
    | Error e ->
        printf "static: %a@." E9_check.Static.pp_error e;
        exit 1);
    if dynamic then
      match
        E9_check.Trace.compare_runs ?disasm_from:from ~original:orig rewr
      with
      | Ok stats -> printf "dynamic: OK — %a@." E9_check.Trace.pp_stats stats
      | Error msg ->
          printf "dynamic: %s@." msg;
          exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Independently verify a rewritten binary against its original \
             (byte classification, trampoline reachability, continuation \
             addresses).")
    Term.(const run $ setup_logs $ original $ rewritten $ from $ dynamic)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz_cmd =
  let n =
    Arg.(
      value & opt int 100
      & info [ "n" ] ~doc:"Number of randomized profiles to run.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.") in
  let run () n seed =
   or_die @@ fun () ->
    let progress i =
      if i mod 10 = 0 then (
        Printf.eprintf "\r%d/%d" i n;
        flush stderr)
    in
    let s = E9_check.Fuzz.campaign ~progress ~n ~seed () in
    Printf.eprintf "\r";
    flush stderr;
    printf "%a@." E9_check.Fuzz.pp_summary s;
    match s.E9_check.Fuzz.failed with
    | [] -> printf "fuzz: OK (seed %d)@." seed
    | failures ->
        List.iter
          (fun (case, msg) -> printf "FAILED %s@.  %s@." case msg)
          failures;
        exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random workload profiles x tactic \
             configs through rewrite, static verification and trace \
             comparison.")
    Term.(const run $ setup_logs $ n $ seed)

(* ------------------------------------------------------------------ *)
(* fault                                                               *)
(* ------------------------------------------------------------------ *)

let fault_cmd =
  let n =
    Arg.(
      value & opt int 100
      & info [ "n" ] ~doc:"Number of randomized fault cases to run.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.") in
  let rpc =
    Arg.(
      value & flag
      & info [ "rpc" ]
          ~doc:"Run the daemon-site campaign (rpcaccept, rpcread, rpcdecode, \
                rpcemit): canned client sessions against in-process servers, \
                checking every session is served byte-identically, dropped \
                at the edge, or killed typed — never the daemon.")
  in
  let run () n seed rpc =
   or_die @@ fun () ->
    let progress i =
      if i mod 10 = 0 then (
        Printf.eprintf "\r%d/%d" i n;
        flush stderr)
    in
    if rpc then begin
      let s = E9_rpc.Harness.campaign ~progress ~n ~seed () in
      Printf.eprintf "\r";
      flush stderr;
      printf "%a@." E9_rpc.Harness.pp_summary s;
      match s.E9_rpc.Harness.failures with
      | [] -> printf "fault: OK (seed %d)@." seed
      | failures ->
          List.iter
            (fun (case, msg) -> printf "FAILED %s@.  %s@." case msg)
            failures;
          exit 1
    end
    else begin
      let s = E9_check.Inject.campaign ~progress ~n ~seed () in
      Printf.eprintf "\r";
      flush stderr;
      printf "%a@." E9_check.Inject.pp_summary s;
      match s.E9_check.Inject.failures with
      | [] -> printf "fault: OK (seed %d)@." seed
      | failures ->
          List.iter
            (fun (case, msg) -> printf "FAILED %s@.  %s@." case msg)
            failures;
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:"Fault-injection campaign: random rewrite cases x random fault \
             schedules; every injected fault must degrade to a verified \
             output, be accounted per-site, or raise a typed error with no \
             partial file, byte-identically across domain counts.")
    Term.(const run $ setup_logs $ n $ seed $ rpc)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve on a Unix-domain socket at $(docv) (sessions run on a \
                worker-pool domain each) instead of a single session over \
                stdio.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:"Write one ndjson telemetry trace per session \
                (session-N.ndjson) into $(docv).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains per rewrite inside a session (default 1: the daemon \
                parallelizes across sessions; output bytes never depend on \
                this).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for the socket session pool (default: \
                \\$E9_DOMAINS, else the recommended domain count).")
  in
  let max_sessions =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Stop accepting after $(docv) connections (testing; default \
                unlimited).")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Entries per content-addressed cache (decode and result).")
  in
  let plan_capacity =
    Arg.(
      value & opt int 1024
      & info [ "plan-capacity" ] ~docv:"N"
          ~doc:"Entries in the chunk-granular plan cache (sessions opt in \
                with the \"plan\" option; one entry per text chunk, so this \
                runs much deeper than the whole-binary caches).")
  in
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:"Deterministic fault injection over the daemon sites \
                (rpcaccept, rpcread, rpcdecode, rpcemit), same grammar as \
                patch --inject.")
  in
  let run () socket trace_dir jobs domains max_sessions cache plan_capacity
      inject =
   or_die @@ fun () ->
    let fault =
      match inject with
      | None -> Fault.none
      | Some spec -> Fault.create (Fault.parse spec)
    in
    let server =
      E9_rpc.Server.create ~cache_capacity:cache ~plan_capacity ~jobs ~fault
        ?trace_dir ()
    in
    (match socket with
    | None -> E9_rpc.Server.serve_channels server stdin stdout
    | Some path ->
        Printf.eprintf "e9patch: serving on %s\n%!" path;
        E9_rpc.Server.serve_unix server ~path ?domains ?max_sessions ());
    (* Protocol output went to stdout (or the socket); the end-of-life
       summary is operator-facing, so it goes to stderr. *)
    let started, closed = E9_rpc.Server.sessions server in
    let rc = E9_rpc.Cache.stats (E9_rpc.Server.ctx server).E9_rpc.Session.result_cache in
    Printf.eprintf
      "e9patch: served %d session(s) (%d request(s), %d error(s)); result \
       cache %d/%d hits; p99 %.1f ms\n%!"
      closed
      (E9_rpc.Server.requests server)
      (E9_rpc.Server.errors server)
      rc.E9_rpc.Cache.hits
      (rc.E9_rpc.Cache.hits + rc.E9_rpc.Cache.misses)
      (1000.0 *. E9_rpc.Server.latency_percentile server 0.99);
    ignore started
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the rewriting service: JSON-RPC 2.0 (binary / options / \
             trampoline / reserve / patch / emit, line-delimited, batch \
             arrays supported) over stdio or a Unix-domain socket, with \
             content-addressed caching and oracle verification of every \
             served output.")
    Term.(
      const run $ setup_logs $ socket $ trace_dir $ jobs $ domains
      $ max_sessions $ cache $ plan_capacity $ inject)

(* ------------------------------------------------------------------ *)
(* robust                                                              *)
(* ------------------------------------------------------------------ *)

let robust_cmd =
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write the machine-readable pass-rate matrix to \\$(docv).")
  in
  let family =
    Arg.(
      value & opt (some string) None
      & info [ "family" ] ~docv:"NAME"
          ~doc:"Score a single corpus family instead of the whole corpus.")
  in
  let run () json family =
   or_die @@ fun () ->
    let module Adversary = E9_workload.Adversary in
    let module Matrix = E9_check.Matrix in
    let scores =
      match family with
      | Some name -> (
          match Adversary.find name with
          | Some f -> [ Matrix.score_family f ]
          | None ->
              failwith
                (Printf.sprintf "unknown family %s; corpus: %s" name
                   (String.concat " "
                      (List.map
                         (fun (f : Adversary.family) -> f.Adversary.name)
                         Adversary.families))))
      | None ->
          let total = List.length Adversary.families in
          Matrix.run
            ~progress:(fun i ->
              Printf.eprintf "\r%d/%d" i total;
              flush stderr)
            ()
    in
    Printf.eprintf "\r";
    flush stderr;
    printf "%a" E9_check.Matrix.pp scores;
    (match json with
    | Some path -> E9_obs.Json.to_file path (Matrix.to_json scores)
    | None -> ());
    if not (List.for_all Matrix.passed scores) then exit 1
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Robustness corpus: score every adversarial binary family \
             (patched%, tactic mix, reject histogram, static and trace \
             verdicts, jobs byte-identity) against its pinned floor.")
    Term.(const run $ setup_logs $ json $ family)

(* ------------------------------------------------------------------ *)
(* spec-check                                                          *)
(* ------------------------------------------------------------------ *)

let spec_check_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC") in
  let run input =
    let ic = open_in input in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Patchspec.parse src with
    | spec ->
        printf "%a" Patchspec.pp spec;
        printf "(%d rules, well-formed)@." (List.length spec)
    | exception Patchspec.Parse_error { line; col; message } ->
        printf "%s:%d:%d: %s@." input line col message;
        exit 1
  in
  Cmd.v (Cmd.info "spec-check" ~doc:"Parse and echo a patch-spec file.")
    Term.(const run $ input)

let () =
  let doc = "static binary rewriting without control flow recovery" in
  (* cmdliner reserves double-dash names for multi-char options; accept the
     documented [fuzz --n N] spelling anyway. *)
  let argv = Array.map (fun a -> if a = "--n" then "-n" else a) Sys.argv in
  exit
    (Cmd.eval ~argv
       (Cmd.group (Cmd.info "e9patch" ~doc)
          [ patch_cmd; tool_cmd; generate_cmd; run_cmd; disasm_cmd; check_cmd;
            fuzz_cmd; fault_cmd; robust_cmd; spec_check_cmd; serve_cmd ]))
